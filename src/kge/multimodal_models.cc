#include "kge/multimodal_models.h"

#include <algorithm>
#include <cmath>

#include "kge/grad_sink.h"
#include "nn/kernels.h"
#include "nn/loss.h"
#include "util/logging.h"

namespace openbg::kge {
namespace {

float SignOf(float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); }

/// Per-thread gradient scratch, so concurrent TrainBatch calls never share
/// a buffer. `which` selects one of a few independent slots per thread.
std::vector<float>& Scratch(size_t n, size_t which = 0) {
  static thread_local std::vector<float> bufs[8];
  std::vector<float>& b = bufs[which];
  if (b.size() < n) b.resize(n);
  return b;
}

}  // namespace

// -------------------------------------------------------- MultimodalBase

MultimodalBase::MultimodalBase(const Dataset& dataset, size_t dim,
                               util::Rng* rng)
    : KgeModel(dataset.num_entities(), dataset.num_relations()),
      dim_(dim),
      image_dim_(0) {
  for (const auto& img : dataset.entity_images) {
    if (!img.empty()) {
      image_dim_ = img.size();
      break;
    }
  }
  if (image_dim_ == 0) image_dim_ = 1;  // dataset without any images
  image_ptr_.resize(dataset.num_entities(), nullptr);
  for (uint32_t e = 0; e < dataset.num_entities(); ++e) {
    if (!dataset.entity_images[e].empty()) {
      image_ptr_[e] = dataset.entity_images[e].data();
    }
  }
  proj_ = nn::Matrix(image_dim_, dim);
  proj_.InitXavier(rng);
}

bool MultimodalBase::ProjectImage(uint32_t e, float* out) const {
  std::fill(out, out + dim_, 0.0f);
  const float* img = image_ptr_[e];
  if (img == nullptr) return false;
  for (size_t i = 0; i < image_dim_; ++i) {
    float xi = img[i] * image_scale_;
    if (xi == 0.0f) continue;
    nn::Axpy(xi, proj_.Row(i), out, dim_);
  }
  return true;
}

void MultimodalBase::UpdateProjection(uint32_t e, const float* dout,
                                      float lr) {
  DirectGradSink sink;
  EmitProjectionUpdate(e, dout, lr, &sink);
}

void MultimodalBase::EmitProjectionUpdate(uint32_t e, const float* dout,
                                          float lr, GradSink* sink) {
  const float* img = image_ptr_[e];
  if (img == nullptr) return;
  for (size_t i = 0; i < image_dim_; ++i) {
    float xi = img[i] * image_scale_;
    if (xi == 0.0f) continue;
    sink->AxpyRow(&proj_, i, -lr * xi, dout, dim_);
  }
}

// ------------------------------------------------------------- TransAE

TransAeModel::TransAeModel(const Dataset& dataset, size_t dim, float margin,
                           float recon_weight, util::Rng* rng)
    : MultimodalBase(dataset, dim, rng),
      margin_(margin),
      recon_weight_(recon_weight),
      ent_(dataset.num_entities(), dim, rng),
      rel_(dataset.num_relations(), dim, rng) {
  image_scale_ = 0.2f;  // visual channel augments the unit-ball embeddings
  decoder_ = nn::Matrix(dim, image_dim_);
  decoder_.InitXavier(rng);
}

void TransAeModel::Fused(uint32_t e, float* out) const {
  ProjectImage(e, out);
  nn::Axpy(1.0f, ent_.Row(e), out, dim_);
}

void TransAeModel::PrepareEval() {
  fused_cache_ = nn::Matrix(num_entities_, dim_);
  for (uint32_t e = 0; e < num_entities_; ++e) {
    Fused(e, fused_cache_.Row(e));
  }
  cache_valid_ = true;
}

float TransAeModel::ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const {
  std::vector<float> fh(dim_), ft(dim_);
  Fused(h, fh.data());
  Fused(t, ft.data());
  const float* rr = rel_.Row(r);
  float s = 0.0f;
  for (size_t d = 0; d < dim_; ++d) {
    s += std::fabs(fh[d] + rr[d] - ft[d]);
  }
  return -s;
}

void TransAeModel::ScoreTails(uint32_t h, uint32_t r,
                              std::vector<float>* out) const {
  OPENBG_CHECK(cache_valid_) << "PrepareEval() not called";
  out->resize(num_entities_);
  std::vector<float> target(dim_);
  const float* fh = fused_cache_.Row(h);
  const float* rr = rel_.Row(r);
  for (size_t d = 0; d < dim_; ++d) target[d] = fh[d] + rr[d];
  for (uint32_t t = 0; t < num_entities_; ++t) {
    (*out)[t] = -nn::L1Distance(target.data(), fused_cache_.Row(t), dim_);
  }
}

void TransAeModel::ScoreHeads(uint32_t r, uint32_t t,
                              std::vector<float>* out) const {
  OPENBG_CHECK(cache_valid_);
  out->resize(num_entities_);
  std::vector<float> target(dim_);
  const float* ft = fused_cache_.Row(t);
  const float* rr = rel_.Row(r);
  for (size_t d = 0; d < dim_; ++d) target[d] = ft[d] - rr[d];
  for (uint32_t h = 0; h < num_entities_; ++h) {
    (*out)[h] = -nn::L1Distance(fused_cache_.Row(h), target.data(), dim_);
  }
}

void TransAeModel::EmitGrad(const LpTriple& t, float direction, float lr,
                            GradSink* sink) {
  std::vector<float>& fh = Scratch(dim_, 0);
  std::vector<float>& ft = Scratch(dim_, 1);
  std::vector<float>& g = Scratch(dim_, 2);
  std::vector<float>& neg_g = Scratch(dim_, 3);
  Fused(t.h, fh.data());
  Fused(t.t, ft.data());
  const float* rr = rel_.Row(t.r);
  for (size_t d = 0; d < dim_; ++d) {
    g[d] = direction * SignOf(fh[d] + rr[d] - ft[d]);
    neg_g[d] = -g[d];
  }
  // d fused/d struct = I ; d fused/d proj handled by EmitProjectionUpdate.
  ent_.Update(sink, t.h, g.data(), lr);
  rel_.Update(sink, t.r, g.data(), lr);
  ent_.Axpy(sink, t.t, lr, g.data());
  EmitProjectionUpdate(t.h, g.data(), lr, sink);
  EmitProjectionUpdate(t.t, neg_g.data(), lr, sink);
  ent_.ProjectToUnitBall(sink, t.h);
  ent_.ProjectToUnitBall(sink, t.t);
}

double TransAeModel::EmitReconStep(uint32_t e, float lr, GradSink* sink) {
  // Linear autoencoder on the image channel: x_hat = decoder^T enc(x),
  // enc(x) = proj^T x. Squared loss trains both maps.
  const float* img = image_ptr_[e];
  if (img == nullptr) return 0.0;
  std::vector<float>& z = Scratch(dim_, 0);
  std::fill(z.begin(), z.begin() + dim_, 0.0f);
  ProjectImage(e, z.data());
  std::vector<float>& xhat = Scratch(image_dim_, 1);
  std::fill(xhat.begin(), xhat.begin() + image_dim_, 0.0f);
  for (size_t d = 0; d < dim_; ++d) {
    float zd = z[d];
    if (zd == 0.0f) continue;
    nn::Axpy(zd, decoder_.Row(d), xhat.data(), image_dim_);
  }
  double loss = 0.0;
  std::vector<float>& dxhat = Scratch(image_dim_, 2);
  for (size_t i = 0; i < image_dim_; ++i) {
    float diff = xhat[i] - img[i];
    loss += 0.5 * diff * diff;
    dxhat[i] = recon_weight_ * diff;
  }
  // dz = decoder dxhat ; d decoder[d][i] = z[d] * dxhat[i]. All decoder
  // rows are read before any is written, so routing the writes through the
  // sink preserves the serial arithmetic exactly.
  std::vector<float>& dz = Scratch(dim_, 3);
  for (size_t d = 0; d < dim_; ++d) {
    dz[d] = nn::Dot(decoder_.Row(d), dxhat.data(), image_dim_);
  }
  for (size_t d = 0; d < dim_; ++d) {
    sink->AxpyRow(&decoder_, d, -lr * z[d], dxhat.data(), image_dim_);
  }
  EmitProjectionUpdate(e, dz.data(), lr, sink);
  return recon_weight_ * loss;
}

double TransAeModel::TrainBatch(const std::vector<LpTriple>& pos,
                                const std::vector<LpTriple>& neg, float lr,
                                GradSink* sink) {
  cache_valid_.store(false, std::memory_order_relaxed);
  double loss = 0.0;
  for (size_t i = 0; i < pos.size(); ++i) {
    float dp = -ScoreTriple(pos[i].h, pos[i].r, pos[i].t);
    float dn = -ScoreTriple(neg[i].h, neg[i].r, neg[i].t);
    float hinge = margin_ + dp - dn;
    if (hinge > 0.0f) {
      loss += hinge;
      EmitGrad(pos[i], +1.0f, lr, sink);
      EmitGrad(neg[i], -1.0f, lr, sink);
    }
    loss += EmitReconStep(pos[i].h, lr, sink);
  }
  return loss / static_cast<double>(pos.size());
}

double TransAeModel::TrainPairs(const std::vector<LpTriple>& pos,
                                const std::vector<LpTriple>& neg,
                                float lr) {
  DirectGradSink sink;
  return TrainBatch(pos, neg, lr, &sink);
}

// ---------------------------------------------------------------- RSME

RsmeModel::RsmeModel(const Dataset& dataset, size_t dim, float margin,
                     util::Rng* rng)
    : MultimodalBase(dataset, dim, rng),
      margin_(margin),
      ent_(dataset.num_entities(), dim, rng),
      rel_(dataset.num_relations(), dim, rng) {
  image_scale_ = 0.2f;
  gate_ = nn::Matrix(1, dim);  // zero => sigmoid 0.5: balanced start
}

void RsmeModel::Fused(uint32_t e, float* out) const {
  std::vector<float> v(dim_, 0.0f);
  bool has_image = ProjectImage(e, v.data());
  const float* s = ent_.Row(e);
  for (size_t d = 0; d < dim_; ++d) {
    if (has_image) {
      float a = 1.0f / (1.0f + std::exp(-gate_(0, d)));
      out[d] = a * s[d] + (1.0f - a) * v[d];
    } else {
      out[d] = s[d];  // forget path: no visual signal
    }
  }
}

void RsmeModel::PrepareEval() {
  fused_cache_ = nn::Matrix(num_entities_, dim_);
  for (uint32_t e = 0; e < num_entities_; ++e) {
    Fused(e, fused_cache_.Row(e));
  }
  cache_valid_ = true;
}

float RsmeModel::ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const {
  std::vector<float> fh(dim_), ft(dim_);
  Fused(h, fh.data());
  Fused(t, ft.data());
  const float* rr = rel_.Row(r);
  float s = 0.0f;
  for (size_t d = 0; d < dim_; ++d) s += std::fabs(fh[d] + rr[d] - ft[d]);
  return -s;
}

void RsmeModel::ScoreTails(uint32_t h, uint32_t r,
                           std::vector<float>* out) const {
  OPENBG_CHECK(cache_valid_) << "PrepareEval() not called";
  out->resize(num_entities_);
  std::vector<float> target(dim_);
  const float* fh = fused_cache_.Row(h);
  const float* rr = rel_.Row(r);
  for (size_t d = 0; d < dim_; ++d) target[d] = fh[d] + rr[d];
  for (uint32_t t = 0; t < num_entities_; ++t) {
    (*out)[t] = -nn::L1Distance(target.data(), fused_cache_.Row(t), dim_);
  }
}

void RsmeModel::ScoreHeads(uint32_t r, uint32_t t,
                           std::vector<float>* out) const {
  OPENBG_CHECK(cache_valid_);
  out->resize(num_entities_);
  std::vector<float> target(dim_);
  const float* ft = fused_cache_.Row(t);
  const float* rr = rel_.Row(r);
  for (size_t d = 0; d < dim_; ++d) target[d] = ft[d] - rr[d];
  for (uint32_t h = 0; h < num_entities_; ++h) {
    (*out)[h] = -nn::L1Distance(fused_cache_.Row(h), target.data(), dim_);
  }
}

void RsmeModel::EmitGrad(const LpTriple& t, float direction, float lr,
                         GradSink* sink) {
  std::vector<float>& fh = Scratch(dim_, 0);
  std::vector<float>& ft = Scratch(dim_, 1);
  std::vector<float>& vh = Scratch(dim_, 2);
  std::vector<float>& vt = Scratch(dim_, 3);
  std::fill(vh.begin(), vh.begin() + dim_, 0.0f);
  std::fill(vt.begin(), vt.begin() + dim_, 0.0f);
  bool h_img = ProjectImage(t.h, vh.data());
  bool t_img = ProjectImage(t.t, vt.data());
  Fused(t.h, fh.data());
  Fused(t.t, ft.data());
  const float* hs = ent_.Row(t.h);
  const float* ts = ent_.Row(t.t);
  const float* rr = rel_.Row(t.r);
  std::vector<float>& dvh = Scratch(dim_, 4);
  std::vector<float>& dvt = Scratch(dim_, 5);
  std::vector<float>& dh = Scratch(dim_, 6);
  // dt / drr / dgate packed to stay within the scratch slots.
  std::vector<float>& rest = Scratch(3 * dim_, 7);
  float* dt = rest.data();
  float* drr = rest.data() + dim_;
  float* dgate_v = rest.data() + 2 * dim_;
  for (size_t d = 0; d < dim_; ++d) {
    float g = direction * SignOf(fh[d] + rr[d] - ft[d]);
    float a = 1.0f / (1.0f + std::exp(-gate_(0, d)));
    float sh = hs[d], st = ts[d];
    // d fused_h = g ; d fused_t = -g ; d r = g.
    float dgate = 0.0f;
    dvh[d] = 0.0f;
    dvt[d] = 0.0f;
    if (h_img) {
      dvh[d] = (1.0f - a) * g;
      dgate += g * (sh - vh[d]) * a * (1.0f - a);
    }
    if (t_img) {
      dvt[d] = -(1.0f - a) * g;
      dgate += -g * (st - vt[d]) * a * (1.0f - a);
    }
    dh[d] = (h_img ? a : 1.0f) * g;
    dt[d] = (t_img ? a : 1.0f) * g;
    drr[d] = g;
    dgate_v[d] = dgate;
  }
  ent_.Update(sink, t.h, dh.data(), lr);
  ent_.Axpy(sink, t.t, lr, dt);
  rel_.Update(sink, t.r, drr, lr);
  sink->AxpyRow(&gate_, 0, -lr, dgate_v, dim_);
  EmitProjectionUpdate(t.h, dvh.data(), lr, sink);
  EmitProjectionUpdate(t.t, dvt.data(), lr, sink);
  ent_.ProjectToUnitBall(sink, t.h);
  ent_.ProjectToUnitBall(sink, t.t);
}

double RsmeModel::TrainBatch(const std::vector<LpTriple>& pos,
                             const std::vector<LpTriple>& neg, float lr,
                             GradSink* sink) {
  cache_valid_.store(false, std::memory_order_relaxed);
  double loss = 0.0;
  for (size_t i = 0; i < pos.size(); ++i) {
    float dp = -ScoreTriple(pos[i].h, pos[i].r, pos[i].t);
    float dn = -ScoreTriple(neg[i].h, neg[i].r, neg[i].t);
    float hinge = margin_ + dp - dn;
    if (hinge > 0.0f) {
      loss += hinge;
      EmitGrad(pos[i], +1.0f, lr, sink);
      EmitGrad(neg[i], -1.0f, lr, sink);
    }
  }
  return loss / static_cast<double>(pos.size());
}

double RsmeModel::TrainPairs(const std::vector<LpTriple>& pos,
                             const std::vector<LpTriple>& neg, float lr) {
  DirectGradSink sink;
  return TrainBatch(pos, neg, lr, &sink);
}

// ----------------------------------------------------------- MkgFusion

MkgFusionModel::MkgFusionModel(const Dataset& dataset, size_t dim,
                               float margin, util::Rng* rng,
                               size_t hash_space)
    : MultimodalBase(dataset, dim, rng),
      margin_(margin),
      features_(dataset, hash_space),
      ent_(dataset.num_entities(), dim, rng),
      rel_struct_(dataset.num_relations(), dim, rng),
      rel_text_(dataset.num_relations(), dim, rng),
      rel_image_(dataset.num_relations(), dim, rng),
      text_emb_("mkg.text", hash_space, dim, rng) {
  image_scale_ = 0.2f;
  channel_logits_ = nn::Matrix(1, kChannels);
}

void MkgFusionModel::ChannelWeights(float* w) const {
  float mx = -1e30f;
  for (size_t c = 0; c < kChannels; ++c) {
    mx = std::max(mx, channel_logits_(0, c));
  }
  float z = 0.0f;
  for (size_t c = 0; c < kChannels; ++c) {
    w[c] = std::exp(channel_logits_(0, c) - mx);
    z += w[c];
  }
  for (size_t c = 0; c < kChannels; ++c) w[c] /= z;
}

void MkgFusionModel::ChannelVectors(uint32_t e, nn::Matrix* out) const {
  *out = nn::Matrix(kChannels, dim_);
  // Structure channel.
  const float* s = ent_.Row(e);
  std::copy(s, s + dim_, out->Row(0));
  // Text channel.
  nn::Matrix txt;
  text_emb_.Forward({features_.EntityFeatures(e)}, &txt);
  std::copy(txt.Row(0), txt.Row(0) + dim_, out->Row(1));
  // Image channel (zeros when absent).
  ProjectImage(e, out->Row(2));
}

float MkgFusionModel::WeightedDistance(uint32_t h, uint32_t r, uint32_t t,
                                       float* d_out) const {
  nn::Matrix hc, tc;
  ChannelVectors(h, &hc);
  ChannelVectors(t, &tc);
  float w[kChannels];
  ChannelWeights(w);
  const EmbeddingTable* rels[kChannels] = {&rel_struct_, &rel_text_,
                                           &rel_image_};
  float total = 0.0f;
  for (size_t c = 0; c < kChannels; ++c) {
    const float* rr = rels[c]->Row(r);
    float dist = 0.0f;
    for (size_t d = 0; d < dim_; ++d) {
      dist += std::fabs(hc(c, d) + rr[d] - tc(c, d));
    }
    if (d_out != nullptr) d_out[c] = dist;
    total += w[c] * dist;
  }
  return total;
}

float MkgFusionModel::ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const {
  return -WeightedDistance(h, r, t, nullptr);
}

void MkgFusionModel::PrepareEval() {
  channel_cache_.assign(kChannels, nn::Matrix(num_entities_, dim_));
  nn::Matrix cv;
  for (uint32_t e = 0; e < num_entities_; ++e) {
    ChannelVectors(e, &cv);
    for (size_t c = 0; c < kChannels; ++c) {
      std::copy(cv.Row(c), cv.Row(c) + dim_, channel_cache_[c].Row(e));
    }
  }
  cache_valid_ = true;
}

void MkgFusionModel::ScoreTails(uint32_t h, uint32_t r,
                                std::vector<float>* out) const {
  OPENBG_CHECK(cache_valid_) << "PrepareEval() not called";
  out->assign(num_entities_, 0.0f);
  float w[kChannels];
  ChannelWeights(w);
  const EmbeddingTable* rels[kChannels] = {&rel_struct_, &rel_text_,
                                           &rel_image_};
  std::vector<float> target(dim_);
  for (size_t c = 0; c < kChannels; ++c) {
    const float* hc = channel_cache_[c].Row(h);
    const float* rr = rels[c]->Row(r);
    for (size_t d = 0; d < dim_; ++d) target[d] = hc[d] + rr[d];
    for (uint32_t t = 0; t < num_entities_; ++t) {
      (*out)[t] -= w[c] * nn::L1Distance(target.data(),
                                         channel_cache_[c].Row(t), dim_);
    }
  }
}

void MkgFusionModel::ScoreHeads(uint32_t r, uint32_t t,
                                std::vector<float>* out) const {
  OPENBG_CHECK(cache_valid_);
  out->assign(num_entities_, 0.0f);
  float w[kChannels];
  ChannelWeights(w);
  const EmbeddingTable* rels[kChannels] = {&rel_struct_, &rel_text_,
                                           &rel_image_};
  std::vector<float> target(dim_);
  for (size_t c = 0; c < kChannels; ++c) {
    const float* tc = channel_cache_[c].Row(t);
    const float* rr = rels[c]->Row(r);
    for (size_t d = 0; d < dim_; ++d) target[d] = tc[d] - rr[d];
    for (uint32_t h = 0; h < num_entities_; ++h) {
      (*out)[h] -= w[c] * nn::L1Distance(channel_cache_[c].Row(h),
                                         target.data(), dim_);
    }
  }
}

void MkgFusionModel::EmitGrad(const LpTriple& t, float direction, float lr,
                              GradSink* sink) {
  nn::Matrix hc, tc;
  ChannelVectors(t.h, &hc);
  ChannelVectors(t.t, &tc);
  float w[kChannels];
  ChannelWeights(w);
  EmbeddingTable* rels[kChannels] = {&rel_struct_, &rel_text_, &rel_image_};

  // Per-channel distances for the softmax-weight gradient.
  float dists[kChannels];
  float mean_dist = 0.0f;
  for (size_t c = 0; c < kChannels; ++c) {
    const float* rr = rels[c]->Row(t.r);
    float dist = 0.0f;
    for (size_t d = 0; d < dim_; ++d) {
      dist += std::fabs(hc(c, d) + rr[d] - tc(c, d));
    }
    dists[c] = dist;
    mean_dist += w[c] * dist;
  }
  // d total / d logit_c = w_c (d_c - mean); `direction` +1 shrinks the
  // positive pair's weighted distance.
  float dlog[kChannels];
  for (size_t c = 0; c < kChannels; ++c) {
    dlog[c] = direction * w[c] * (dists[c] - mean_dist);
  }
  sink->AxpyRow(&channel_logits_, 0, -lr, dlog, kChannels);

  std::vector<float>& g = Scratch(dim_, 0);
  std::vector<float>& neg_g = Scratch(dim_, 1);
  for (size_t c = 0; c < kChannels; ++c) {
    const float* rr = rels[c]->Row(t.r);
    float wc = direction * w[c];
    for (size_t d = 0; d < dim_; ++d) {
      g[d] = wc * SignOf(hc(c, d) + rr[d] - tc(c, d));
    }
    rels[c]->Update(sink, t.r, g.data(), lr);
    switch (c) {
      case 0: {  // structure
        ent_.Update(sink, t.h, g.data(), lr);
        ent_.Axpy(sink, t.t, lr, g.data());
        ent_.ProjectToUnitBall(sink, t.h);
        ent_.ProjectToUnitBall(sink, t.t);
        break;
      }
      case 1: {  // text: h gets -g, t gets +g through the shared bag table
        // Each bag feature's row moves by -lr * (1/|bag|) * dout, emitted
        // directly through the sink instead of staging in the shared
        // Parameter::grad buffer (which concurrent batches would race on).
        nn::Parameter* tp = text_emb_.table();
        auto emit_rows = [&](const std::vector<uint32_t>& bag, float sign) {
          if (bag.empty()) return;
          float alpha = -lr * sign / static_cast<float>(bag.size());
          for (uint32_t f : bag) {
            sink->AxpyRow(&tp->value,
                          static_cast<uint32_t>(f % text_emb_.vocab_size()),
                          alpha, g.data(), dim_);
          }
        };
        emit_rows(features_.EntityFeatures(t.h), 1.0f);
        emit_rows(features_.EntityFeatures(t.t), -1.0f);
        break;
      }
      case 2: {  // image
        for (size_t d = 0; d < dim_; ++d) neg_g[d] = -g[d];
        EmitProjectionUpdate(t.h, g.data(), lr, sink);
        EmitProjectionUpdate(t.t, neg_g.data(), lr, sink);
        break;
      }
    }
  }
}

double MkgFusionModel::TrainBatch(const std::vector<LpTriple>& pos,
                                  const std::vector<LpTriple>& neg, float lr,
                                  GradSink* sink) {
  cache_valid_.store(false, std::memory_order_relaxed);
  double loss = 0.0;
  for (size_t i = 0; i < pos.size(); ++i) {
    float dp = WeightedDistance(pos[i].h, pos[i].r, pos[i].t, nullptr);
    float dn = WeightedDistance(neg[i].h, neg[i].r, neg[i].t, nullptr);
    float hinge = margin_ + dp - dn;
    if (hinge > 0.0f) {
      loss += hinge;
      EmitGrad(pos[i], +1.0f, lr, sink);
      EmitGrad(neg[i], -1.0f, lr, sink);
    }
  }
  return loss / static_cast<double>(pos.size());
}

double MkgFusionModel::TrainPairs(const std::vector<LpTriple>& pos,
                                  const std::vector<LpTriple>& neg,
                                  float lr) {
  DirectGradSink sink;
  return TrainBatch(pos, neg, lr, &sink);
}

}  // namespace openbg::kge
