#include "kge/evaluator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace openbg::kge {
namespace {

uint64_t PairKey(uint32_t a, uint32_t r) {
  return (static_cast<uint64_t>(a) << 32) | r;
}

}  // namespace

RankingEvaluator::RankingEvaluator(const Dataset& dataset, Options options)
    : dataset_(&dataset), options_(options) {
  if (options_.filtered) {
    for (const auto* split :
         {&dataset.train, &dataset.dev, &dataset.test}) {
      for (const LpTriple& t : *split) {
        true_tails_[PairKey(t.h, t.r)].push_back(t.t);
        true_heads_[PairKey(t.t, t.r)].push_back(t.h);
      }
    }
    // Dedup: RankOf subtracts once per skip entry, so a triple repeated
    // across (or within) splits must contribute one entry, not several.
    for (auto* index : {&true_tails_, &true_heads_}) {
      for (auto& [key, ids] : *index) {
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      }
    }
  }
}

size_t RankingEvaluator::RankOf(const std::vector<float>& scores,
                                uint32_t gold,
                                const std::vector<uint32_t>& skip) const {
  const float gold_score = scores[gold];
  size_t better = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i == gold) continue;
    if (scores[i] > gold_score) ++better;
  }
  // Remove filtered candidates that outscored gold.
  for (uint32_t s : skip) {
    if (s != gold && scores[s] > gold_score) --better;
  }
  return better + 1;
}

RankingMetrics RankingEvaluator::Evaluate(KgeModel* model) const {
  return EvaluateOn(model, dataset_->test);
}

RankingMetrics RankingEvaluator::EvaluateOn(
    KgeModel* model, const std::vector<LpTriple>& triples) const {
  model->PrepareEval();
  static const std::vector<uint32_t> kNoSkip;
  const size_t limit = options_.max_triples > 0
                           ? std::min(options_.max_triples, triples.size())
                           : triples.size();

  // Phase 1 (parallelizable): integer ranks per triple. Each shard owns a
  // private score buffer and writes disjoint slots of the rank arrays, so
  // workers share only the frozen model and filter maps.
  std::vector<size_t> tail_ranks(limit);
  std::vector<size_t> head_ranks(options_.both_directions ? limit : 0);
  auto rank_range = [&](size_t /*shard*/, size_t begin, size_t end) {
    std::vector<float> scores;
    for (size_t i = begin; i < end; ++i) {
      const LpTriple& t = triples[i];
      model->ScoreTails(t.h, t.r, &scores);
      const std::vector<uint32_t>* skip = &kNoSkip;
      if (options_.filtered) {
        auto it = true_tails_.find(PairKey(t.h, t.r));
        if (it != true_tails_.end()) skip = &it->second;
      }
      tail_ranks[i] = RankOf(scores, t.t, *skip);
      if (options_.both_directions) {
        model->ScoreHeads(t.r, t.t, &scores);
        const std::vector<uint32_t>* hskip = &kNoSkip;
        if (options_.filtered) {
          auto it = true_heads_.find(PairKey(t.t, t.r));
          if (it != true_heads_.end()) hskip = &it->second;
        }
        head_ranks[i] = RankOf(scores, t.h, *hskip);
      }
    }
  };
  if (options_.num_threads > 1 && limit > 1) {
    util::ThreadPool pool(std::min(options_.num_threads, limit));
    util::ParallelFor(&pool, limit, rank_range);
  } else {
    rank_range(0, 0, limit);
  }

  // Phase 2 (serial): fold ranks into metrics in triple order. Ranks are
  // integers and the summation order is fixed, so the result is
  // bit-identical whatever num_threads was.
  RankingMetrics m;
  auto account = [&m](size_t rank) {
    m.mr += static_cast<double>(rank);
    m.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) m.hits1 += 1.0;
    if (rank <= 3) m.hits3 += 1.0;
    if (rank <= 10) m.hits10 += 1.0;
    m.n += 1;
  };
  for (size_t i = 0; i < limit; ++i) {
    account(tail_ranks[i]);
    if (options_.both_directions) account(head_ranks[i]);
  }
  if (m.n > 0) {
    double n = static_cast<double>(m.n);
    m.hits1 /= n;
    m.hits3 /= n;
    m.hits10 /= n;
    m.mr /= n;
    m.mrr /= n;
  }
  return m;
}

}  // namespace openbg::kge
