#include "kge/evaluator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace openbg::kge {
namespace {

uint64_t PairKey(uint32_t a, uint32_t r) {
  return (static_cast<uint64_t>(a) << 32) | r;
}

}  // namespace

RankingEvaluator::RankingEvaluator(const Dataset& dataset, Options options)
    : dataset_(&dataset), options_(options) {
  if (options_.filtered) {
    for (const auto* split :
         {&dataset.train, &dataset.dev, &dataset.test}) {
      for (const LpTriple& t : *split) {
        true_tails_[PairKey(t.h, t.r)].push_back(t.t);
        true_heads_[PairKey(t.t, t.r)].push_back(t.h);
      }
    }
    // Dedup: RankOf subtracts once per skip entry, so a triple repeated
    // across (or within) splits must contribute one entry, not several.
    for (auto* index : {&true_tails_, &true_heads_}) {
      for (auto& [key, ids] : *index) {
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      }
    }
  }
}

size_t RankingEvaluator::RankOf(const float* scores, size_t n,
                                uint32_t gold,
                                const std::vector<uint32_t>& skip) const {
  const float gold_score = scores[gold];
  size_t better = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == gold) continue;
    if (scores[i] > gold_score) ++better;
  }
  // Remove filtered candidates that outscored gold.
  for (uint32_t s : skip) {
    if (s != gold && scores[s] > gold_score) --better;
  }
  return better + 1;
}

const std::vector<uint32_t>& RankingEvaluator::SkipFor(
    const std::unordered_map<uint64_t, std::vector<uint32_t>>& index,
    uint64_t key) const {
  static const std::vector<uint32_t> kNoSkip;
  if (!options_.filtered) return kNoSkip;
  auto it = index.find(key);
  return it != index.end() ? it->second : kNoSkip;
}

RankingMetrics RankingEvaluator::Evaluate(KgeModel* model) const {
  return EvaluateOn(model, dataset_->test);
}

RankingMetrics RankingEvaluator::EvaluateOn(
    KgeModel* model, const std::vector<LpTriple>& triples) const {
  model->PrepareEval();
  const size_t limit = options_.max_triples > 0
                           ? std::min(options_.max_triples, triples.size())
                           : triples.size();

  // Phase 1 (parallelizable): integer ranks per triple, written into
  // per-triple slots so the phase-2 fold below runs in original triple
  // order regardless of how phase 1 was scheduled.
  std::vector<size_t> tail_ranks(limit);
  std::vector<size_t> head_ranks(options_.both_directions ? limit : 0);

  if (options_.query_batched) {
    // Group triples by unique query; each unique (h, r) tail-query (and
    // (t, r) head-query) is scored exactly once, and every gold entity
    // sharing it ranks from that same buffer. Queries keep first-occurrence
    // order, which makes the work list deterministic; correctness doesn't
    // depend on it since each triple's rank lands in its own slot.
    struct Query {
      uint32_t a, r;
      std::vector<size_t> triple_idx;
    };
    std::vector<Query> tail_queries, head_queries;
    std::unordered_map<uint64_t, size_t> tail_index, head_index;
    for (size_t i = 0; i < limit; ++i) {
      const LpTriple& t = triples[i];
      auto [it, fresh] =
          tail_index.emplace(PairKey(t.h, t.r), tail_queries.size());
      if (fresh) tail_queries.push_back({t.h, t.r, {}});
      tail_queries[it->second].triple_idx.push_back(i);
      if (options_.both_directions) {
        auto [hit, hfresh] =
            head_index.emplace(PairKey(t.t, t.r), head_queries.size());
        if (hfresh) head_queries.push_back({t.t, t.r, {}});
        head_queries[hit->second].triple_idx.push_back(i);
      }
    }
    // One flat job list (tail queries then head queries) so both
    // directions share the thread shards.
    const size_t num_tail = tail_queries.size();
    const size_t num_jobs = num_tail + head_queries.size();
    auto run_jobs = [&](size_t /*shard*/, size_t begin, size_t end) {
      std::vector<float> scores;
      for (size_t j = begin; j < end; ++j) {
        if (j < num_tail) {
          const Query& q = tail_queries[j];
          if (options_.tail_scorer) {
            options_.tail_scorer(*model, q.a, q.r, &scores);
          } else {
            model->ScoreTails(q.a, q.r, &scores);
          }
          const auto& skip = SkipFor(true_tails_, PairKey(q.a, q.r));
          for (size_t i : q.triple_idx) {
            tail_ranks[i] =
                RankOf(scores.data(), scores.size(), triples[i].t, skip);
          }
        } else {
          const Query& q = head_queries[j - num_tail];
          model->ScoreHeads(q.r, q.a, &scores);
          const auto& skip = SkipFor(true_heads_, PairKey(q.a, q.r));
          for (size_t i : q.triple_idx) {
            head_ranks[i] =
                RankOf(scores.data(), scores.size(), triples[i].h, skip);
          }
        }
      }
    };
    if (options_.num_threads > 1 && num_jobs > 1) {
      util::ThreadPool pool(std::min(options_.num_threads, num_jobs));
      util::ParallelFor(&pool, num_jobs, run_jobs);
    } else {
      run_jobs(0, 0, num_jobs);
    }
  } else {
    // Per-triple reference path: each shard owns a private score buffer
    // and writes disjoint slots of the rank arrays, so workers share only
    // the frozen model and filter maps.
    auto rank_range = [&](size_t /*shard*/, size_t begin, size_t end) {
      std::vector<float> scores;
      for (size_t i = begin; i < end; ++i) {
        const LpTriple& t = triples[i];
        if (options_.tail_scorer) {
          options_.tail_scorer(*model, t.h, t.r, &scores);
        } else {
          model->ScoreTails(t.h, t.r, &scores);
        }
        const auto& skip = SkipFor(true_tails_, PairKey(t.h, t.r));
        tail_ranks[i] = RankOf(scores.data(), scores.size(), t.t, skip);
        if (options_.both_directions) {
          model->ScoreHeads(t.r, t.t, &scores);
          const auto& hskip = SkipFor(true_heads_, PairKey(t.t, t.r));
          head_ranks[i] = RankOf(scores.data(), scores.size(), t.h, hskip);
        }
      }
    };
    if (options_.num_threads > 1 && limit > 1) {
      util::ThreadPool pool(std::min(options_.num_threads, limit));
      util::ParallelFor(&pool, limit, rank_range);
    } else {
      rank_range(0, 0, limit);
    }
  }

  // Phase 2 (serial): fold ranks into metrics in triple order. Ranks are
  // integers and the summation order is fixed, so the result is
  // bit-identical whatever num_threads was.
  RankingMetrics m;
  auto account = [&m](size_t rank) {
    m.mr += static_cast<double>(rank);
    m.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) m.hits1 += 1.0;
    if (rank <= 3) m.hits3 += 1.0;
    if (rank <= 10) m.hits10 += 1.0;
    m.n += 1;
  };
  for (size_t i = 0; i < limit; ++i) {
    account(tail_ranks[i]);
    if (options_.both_directions) account(head_ranks[i]);
  }
  if (m.n > 0) {
    double n = static_cast<double>(m.n);
    m.hits1 /= n;
    m.hits3 /= n;
    m.hits10 /= n;
    m.mr /= n;
    m.mrr /= n;
  }
  return m;
}

}  // namespace openbg::kge
