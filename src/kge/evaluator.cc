#include "kge/evaluator.h"

#include <algorithm>

#include "util/logging.h"

namespace openbg::kge {
namespace {

uint64_t PairKey(uint32_t a, uint32_t r) {
  return (static_cast<uint64_t>(a) << 32) | r;
}

}  // namespace

RankingEvaluator::RankingEvaluator(const Dataset& dataset, Options options)
    : dataset_(&dataset), options_(options) {
  if (options_.filtered) {
    for (const auto* split :
         {&dataset.train, &dataset.dev, &dataset.test}) {
      for (const LpTriple& t : *split) {
        true_tails_[PairKey(t.h, t.r)].push_back(t.t);
        true_heads_[PairKey(t.t, t.r)].push_back(t.h);
      }
    }
  }
}

size_t RankingEvaluator::RankOf(const std::vector<float>& scores,
                                uint32_t gold,
                                const std::vector<uint32_t>& skip) const {
  const float gold_score = scores[gold];
  size_t better = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i == gold) continue;
    if (scores[i] > gold_score) ++better;
  }
  // Remove filtered candidates that outscored gold.
  for (uint32_t s : skip) {
    if (s != gold && scores[s] > gold_score) --better;
  }
  return better + 1;
}

RankingMetrics RankingEvaluator::Evaluate(KgeModel* model) const {
  return EvaluateOn(model, dataset_->test);
}

RankingMetrics RankingEvaluator::EvaluateOn(
    KgeModel* model, const std::vector<LpTriple>& triples) const {
  model->PrepareEval();
  RankingMetrics m;
  std::vector<float> scores;
  static const std::vector<uint32_t> kNoSkip;
  size_t limit = options_.max_triples > 0
                     ? std::min(options_.max_triples, triples.size())
                     : triples.size();
  auto account = [&m](size_t rank) {
    m.mr += static_cast<double>(rank);
    m.mrr += 1.0 / static_cast<double>(rank);
    if (rank <= 1) m.hits1 += 1.0;
    if (rank <= 3) m.hits3 += 1.0;
    if (rank <= 10) m.hits10 += 1.0;
    m.n += 1;
  };
  for (size_t i = 0; i < limit; ++i) {
    const LpTriple& t = triples[i];
    model->ScoreTails(t.h, t.r, &scores);
    const std::vector<uint32_t>* skip = &kNoSkip;
    if (options_.filtered) {
      auto it = true_tails_.find(PairKey(t.h, t.r));
      if (it != true_tails_.end()) skip = &it->second;
    }
    account(RankOf(scores, t.t, *skip));
    if (options_.both_directions) {
      model->ScoreHeads(t.r, t.t, &scores);
      const std::vector<uint32_t>* hskip = &kNoSkip;
      if (options_.filtered) {
        auto it = true_heads_.find(PairKey(t.t, t.r));
        if (it != true_heads_.end()) hskip = &it->second;
      }
      account(RankOf(scores, t.h, *hskip));
    }
  }
  if (m.n > 0) {
    double n = static_cast<double>(m.n);
    m.hits1 /= n;
    m.hits3 /= n;
    m.hits10 /= n;
    m.mr /= n;
    m.mrr /= n;
  }
  return m;
}

}  // namespace openbg::kge
