#include "kge/bilinear_models.h"

#include <algorithm>
#include <cmath>

#include "kge/grad_sink.h"
#include "nn/loss.h"

namespace openbg::kge {
namespace {

/// Per-thread gradient scratch, so concurrent TrainBatch calls never share
/// a buffer. `which` selects one of a few independent slots per thread.
std::vector<float>& Scratch(size_t n, size_t which = 0) {
  static thread_local std::vector<float> bufs[4];
  std::vector<float>& b = bufs[which];
  if (b.size() < n) b.resize(n);
  return b;
}

/// Pointwise logistic step shared by the bilinear family. Each triple's
/// gradient is applied immediately at full magnitude (no batch averaging)
/// — the classic sparse-SGD recipe for KG embeddings, where a batch-mean
/// would shrink each touched row's update by the batch size and stall
/// learning.
template <typename ScoreFn, typename GradFn>
double LogisticPairs(const std::vector<LpTriple>& pos,
                     const std::vector<LpTriple>& neg, float lr,
                     const ScoreFn& score, const GradFn& apply) {
  double loss = 0.0;
  auto step = [&](const LpTriple& t, float label) {
    float s = score(t);
    float x = -label * s;
    loss += x > 20.0f ? x : std::log1p(std::exp(x));
    float dscore = -label / (1.0f + std::exp(label * s));
    apply(t, dscore, lr);
  };
  for (const LpTriple& t : pos) step(t, 1.0f);
  for (const LpTriple& t : neg) step(t, -1.0f);
  return loss / static_cast<double>(pos.size() + neg.size());
}

}  // namespace

// -------------------------------------------------------------- DistMult

DistMult::DistMult(size_t num_entities, size_t num_relations, size_t dim,
                   util::Rng* rng, float l2)
    : KgeModel(num_entities, num_relations),
      dim_(dim),
      l2_(l2),
      ent_(num_entities, dim, rng, 0.5f),
      rel_(num_relations, dim, rng, 0.5f) {}

float DistMult::ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const {
  const float* hh = ent_.Row(h);
  const float* rr = rel_.Row(r);
  const float* tt = ent_.Row(t);
  float s = 0.0f;
  for (size_t i = 0; i < dim_; ++i) s += hh[i] * rr[i] * tt[i];
  return s;
}

void DistMult::ScoreTails(uint32_t h, uint32_t r,
                          std::vector<float>* out) const {
  out->resize(num_entities_);
  std::vector<float> q(dim_);
  const float* hh = ent_.Row(h);
  const float* rr = rel_.Row(r);
  for (size_t i = 0; i < dim_; ++i) q[i] = hh[i] * rr[i];
  nn::RowDots(ent_.matrix(), q.data(), dim_, out);
}

bool DistMult::GetTailScanSpec(TailScanSpec* spec) const {
  spec->metric = TailScanSpec::Metric::kDot;
  spec->table = &ent_.matrix();
  return true;
}

void DistMult::TailScanQuery(uint32_t h, uint32_t r,
                             std::vector<float>* q) const {
  q->resize(dim_);
  const float* hh = ent_.Row(h);
  const float* rr = rel_.Row(r);
  for (size_t i = 0; i < dim_; ++i) (*q)[i] = hh[i] * rr[i];
}

void DistMult::ScoreHeads(uint32_t r, uint32_t t,
                          std::vector<float>* out) const {
  // DistMult is symmetric in h/t given r.
  ScoreTails(t, r, out);
}

void DistMult::EmitGrad(const LpTriple& t, float dscore, float lr,
                        GradSink* sink) {
  const float* hh = ent_.Row(t.h);
  const float* rr = rel_.Row(t.r);
  const float* tt = ent_.Row(t.t);
  std::vector<float>& gh = Scratch(dim_, 0);
  std::vector<float>& gr = Scratch(dim_, 1);
  std::vector<float>& gt = Scratch(dim_, 2);
  for (size_t i = 0; i < dim_; ++i) {
    gh[i] = dscore * rr[i] * tt[i] + l2_ * hh[i];
    gr[i] = dscore * hh[i] * tt[i] + l2_ * rr[i];
    gt[i] = dscore * hh[i] * rr[i] + l2_ * tt[i];
  }
  ent_.Update(sink, t.h, gh.data(), lr);
  rel_.Update(sink, t.r, gr.data(), lr);
  ent_.Update(sink, t.t, gt.data(), lr);
}

double DistMult::TrainBatch(const std::vector<LpTriple>& pos,
                            const std::vector<LpTriple>& neg, float lr,
                            GradSink* sink) {
  return LogisticPairs(
      pos, neg, lr,
      [this](const LpTriple& t) { return ScoreTriple(t.h, t.r, t.t); },
      [this, sink](const LpTriple& t, float d, float l) {
        EmitGrad(t, d, l, sink);
      });
}

double DistMult::TrainPairs(const std::vector<LpTriple>& pos,
                            const std::vector<LpTriple>& neg, float lr) {
  DirectGradSink sink;
  return TrainBatch(pos, neg, lr, &sink);
}

void DistMult::VisitParams(const ParamVisitor& fn) {
  fn("entities", &ent_.matrix());
  fn("relations", &rel_.matrix());
}

// --------------------------------------------------------------- ComplEx

ComplEx::ComplEx(size_t num_entities, size_t num_relations, size_t dim,
                 util::Rng* rng, float l2)
    : KgeModel(num_entities, num_relations),
      dim_(dim),
      l2_(l2),
      ent_(num_entities, 2 * dim, rng, 0.5f),
      rel_(num_relations, 2 * dim, rng, 0.5f) {}

float ComplEx::ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const {
  const float* hh = ent_.Row(h);
  const float* rr = rel_.Row(r);
  const float* tt = ent_.Row(t);
  const float* hre = hh;
  const float* him = hh + dim_;
  const float* rre = rr;
  const float* rim = rr + dim_;
  const float* tre = tt;
  const float* tim = tt + dim_;
  float s = 0.0f;
  for (size_t i = 0; i < dim_; ++i) {
    s += rre[i] * (hre[i] * tre[i] + him[i] * tim[i]) +
         rim[i] * (hre[i] * tim[i] - him[i] * tre[i]);
  }
  return s;
}

void ComplEx::ScoreTails(uint32_t h, uint32_t r,
                         std::vector<float>* out) const {
  out->resize(num_entities_);
  // score(t) = q_re . t_re + q_im . t_im with
  // q_re = h_re*r_re - h_im*r_im ... careful with conj(t):
  // Re(<h,r,conj(t)>) = (h_re r_re - h_im r_im?).. expand from ScoreTriple:
  // s = sum tre*(rre*hre - rim*him) + tim*(rre*him + rim*hre).
  // Entity rows store [re | im] contiguously, so with q = [q_re | q_im]
  // every entity's score is one dot of length 2*dim — a single GEMV.
  std::vector<float> q(2 * dim_);
  const float* hh = ent_.Row(h);
  const float* rr = rel_.Row(r);
  for (size_t i = 0; i < dim_; ++i) {
    q[i] = rr[i] * hh[i] - rr[dim_ + i] * hh[dim_ + i];
    q[dim_ + i] = rr[i] * hh[dim_ + i] + rr[dim_ + i] * hh[i];
  }
  nn::RowDots(ent_.matrix(), q.data(), 2 * dim_, out);
}

bool ComplEx::GetTailScanSpec(TailScanSpec* spec) const {
  // Entity rows store [re | im], so the 2*dim_-wide query from ScoreTails
  // makes every score a plain dot against the raw table.
  spec->metric = TailScanSpec::Metric::kDot;
  spec->table = &ent_.matrix();
  return true;
}

void ComplEx::TailScanQuery(uint32_t h, uint32_t r,
                            std::vector<float>* q) const {
  q->resize(2 * dim_);
  const float* hh = ent_.Row(h);
  const float* rr = rel_.Row(r);
  for (size_t i = 0; i < dim_; ++i) {
    (*q)[i] = rr[i] * hh[i] - rr[dim_ + i] * hh[dim_ + i];
    (*q)[dim_ + i] = rr[i] * hh[dim_ + i] + rr[dim_ + i] * hh[i];
  }
}

void ComplEx::ScoreHeads(uint32_t r, uint32_t t,
                         std::vector<float>* out) const {
  out->resize(num_entities_);
  // s = sum hre*(rre*tre + rim*tim) + him*(rre*tim - rim*tre).
  std::vector<float> q(2 * dim_);
  const float* tt = ent_.Row(t);
  const float* rr = rel_.Row(r);
  for (size_t i = 0; i < dim_; ++i) {
    q[i] = rr[i] * tt[i] + rr[dim_ + i] * tt[dim_ + i];
    q[dim_ + i] = rr[i] * tt[dim_ + i] - rr[dim_ + i] * tt[i];
  }
  nn::RowDots(ent_.matrix(), q.data(), 2 * dim_, out);
}

void ComplEx::EmitGrad(const LpTriple& t, float dscore, float lr,
                       GradSink* sink) {
  const float* hh = ent_.Row(t.h);
  const float* rr = rel_.Row(t.r);
  const float* tt = ent_.Row(t.t);
  std::vector<float>& gh = Scratch(2 * dim_, 0);
  std::vector<float>& gr = Scratch(2 * dim_, 1);
  std::vector<float>& gt = Scratch(2 * dim_, 2);
  for (size_t i = 0; i < dim_; ++i) {
    float hre = hh[i], him = hh[dim_ + i];
    float rre = rr[i], rim = rr[dim_ + i];
    float tre = tt[i], tim = tt[dim_ + i];
    gh[i] = dscore * (rre * tre + rim * tim) + l2_ * hre;
    gh[dim_ + i] = dscore * (rre * tim - rim * tre) + l2_ * him;
    gr[i] = dscore * (hre * tre + him * tim) + l2_ * rre;
    gr[dim_ + i] = dscore * (hre * tim - him * tre) + l2_ * rim;
    gt[i] = dscore * (rre * hre - rim * him) + l2_ * tre;
    gt[dim_ + i] = dscore * (rre * him + rim * hre) + l2_ * tim;
  }
  ent_.Update(sink, t.h, gh.data(), lr);
  rel_.Update(sink, t.r, gr.data(), lr);
  ent_.Update(sink, t.t, gt.data(), lr);
}

double ComplEx::TrainBatch(const std::vector<LpTriple>& pos,
                           const std::vector<LpTriple>& neg, float lr,
                           GradSink* sink) {
  return LogisticPairs(
      pos, neg, lr,
      [this](const LpTriple& t) { return ScoreTriple(t.h, t.r, t.t); },
      [this, sink](const LpTriple& t, float d, float l) {
        EmitGrad(t, d, l, sink);
      });
}

double ComplEx::TrainPairs(const std::vector<LpTriple>& pos,
                           const std::vector<LpTriple>& neg, float lr) {
  DirectGradSink sink;
  return TrainBatch(pos, neg, lr, &sink);
}

void ComplEx::VisitParams(const ParamVisitor& fn) {
  fn("entities", &ent_.matrix());
  fn("relations", &rel_.matrix());
}

// ---------------------------------------------------------------- TuckER

TuckEr::TuckEr(size_t num_entities, size_t num_relations, size_t ent_dim,
               size_t rel_dim, util::Rng* rng, float l2)
    : KgeModel(num_entities, num_relations),
      de_(ent_dim),
      dr_(rel_dim),
      l2_(l2),
      ent_(num_entities, ent_dim, rng, 0.5f),
      rel_(num_relations, rel_dim, rng, 0.5f),
      core_(rel_dim * ent_dim * ent_dim) {
  float bound = 1.0f / std::sqrt(static_cast<float>(ent_dim));
  for (float& w : core_) {
    w = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
}

void TuckEr::RelationMatrix(uint32_t r, std::vector<float>* m) const {
  m->assign(de_ * de_, 0.0f);
  const float* rr = rel_.Row(r);
  for (size_t i = 0; i < dr_; ++i) {
    float ri = rr[i];
    if (ri == 0.0f) continue;
    nn::Axpy(ri, core_.data() + i * de_ * de_, m->data(), de_ * de_);
  }
}

float TuckEr::ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const {
  std::vector<float> m;
  RelationMatrix(r, &m);
  const float* hh = ent_.Row(h);
  const float* tt = ent_.Row(t);
  float s = 0.0f;
  for (size_t j = 0; j < de_; ++j) {
    float hj = hh[j];
    if (hj == 0.0f) continue;
    const float* mj = m.data() + j * de_;
    s += hj * nn::Dot(mj, tt, de_);
  }
  return s;
}

void TuckEr::ScoreTails(uint32_t h, uint32_t r,
                        std::vector<float>* out) const {
  out->resize(num_entities_);
  std::vector<float> m;
  RelationMatrix(r, &m);
  const float* hh = ent_.Row(h);
  std::vector<float> v(de_, 0.0f);  // v_k = sum_j h_j M[j][k]
  for (size_t j = 0; j < de_; ++j) {
    float hj = hh[j];
    if (hj == 0.0f) continue;
    nn::Axpy(hj, m.data() + j * de_, v.data(), de_);
  }
  nn::RowDots(ent_.matrix(), v.data(), de_, out);
}

void TuckEr::ScoreHeads(uint32_t r, uint32_t t,
                        std::vector<float>* out) const {
  out->resize(num_entities_);
  std::vector<float> m;
  RelationMatrix(r, &m);
  const float* tt = ent_.Row(t);
  std::vector<float> w(de_, 0.0f);  // w_j = sum_k M[j][k] t_k
  for (size_t j = 0; j < de_; ++j) {
    w[j] = nn::Dot(m.data() + j * de_, tt, de_);
  }
  nn::RowDots(ent_.matrix(), w.data(), de_, out);
}

double TuckEr::OneToAllStep(uint32_t h, uint32_t r,
                            const std::vector<uint32_t>& tails, float lr) {
  // Forward: v_k = sum_j h_j M[j][k]; logits = v . e_t for all t.
  std::vector<float> m;
  RelationMatrix(r, &m);
  float* hh = ent_.Row(h);
  float* rr = rel_.Row(r);
  std::vector<float> v(de_, 0.0f);
  for (size_t j = 0; j < de_; ++j) {
    float hj = hh[j];
    if (hj == 0.0f) continue;
    nn::Axpy(hj, m.data() + j * de_, v.data(), de_);
  }
  // Multi-label BCE against all entities (label smoothing 0.1 as in the
  // original). dlogit = p - y, scaled by 1/E to keep updates bounded.
  const float smooth_pos = 0.9f;
  const float smooth_neg = 0.1f / static_cast<float>(num_entities_);
  std::vector<float> dlogits(num_entities_);
  double loss = 0.0;
  std::vector<char> is_tail(num_entities_, 0);
  for (uint32_t t : tails) is_tail[t] = 1;
  const float inv_e = 1.0f / static_cast<float>(num_entities_);
  std::vector<float> logits;
  nn::RowDots(ent_.matrix(), v.data(), de_, &logits);
  for (uint32_t t = 0; t < num_entities_; ++t) {
    float p = 1.0f / (1.0f + std::exp(-logits[t]));
    float y = is_tail[t] ? smooth_pos : smooth_neg;
    loss -= y * std::log(std::max(p, 1e-12f)) +
            (1.0f - y) * std::log(std::max(1.0f - p, 1e-12f));
    dlogits[t] = (p - y) * inv_e;
  }
  loss *= inv_e;

  // Backward. dv = sum_t dlogit_t e_t ; de_t = dlogit_t v.
  std::vector<float> dv(de_, 0.0f);
  for (uint32_t t = 0; t < num_entities_; ++t) {
    float g = dlogits[t];
    if (g == 0.0f) continue;
    float* et = ent_.Row(t);
    nn::Axpy(g, et, dv.data(), de_);
    nn::Axpy(-lr * g, v.data(), et, de_);
  }
  // v = h^T M: dh_j = M[j] . dv ; dM[j][k] = h_j dv_k;
  // M = sum_i r_i W_i: dr_i = <W_i, dM> ; dW_i = r_i dM.
  std::vector<float> dh(de_, 0.0f);
  for (size_t j = 0; j < de_; ++j) {
    dh[j] = nn::Dot(m.data() + j * de_, dv.data(), de_);
  }
  for (size_t i = 0; i < dr_; ++i) {
    float* wi = core_.data() + i * de_ * de_;
    float ri = rr[i];
    float dri = 0.0f;
    for (size_t j = 0; j < de_; ++j) {
      float hj = hh[j];
      float* wij = wi + j * de_;
      for (size_t k = 0; k < de_; ++k) {
        float dm = hj * dv[k];
        dri += wij[k] * dm;
        wij[k] -= lr * (ri * dm + l2_ * wij[k]);
      }
    }
    rr[i] -= lr * (dri + l2_ * ri);
  }
  for (size_t j = 0; j < de_; ++j) {
    hh[j] -= lr * (dh[j] + l2_ * hh[j]);
  }
  return loss;
}

void TuckEr::AccumulateTargets(const std::vector<LpTriple>& pos) {
  // Accumulate the (h, r) -> tails index over everything seen, so each
  // step's multi-hot target reflects all known tails. Kept out of
  // TrainPairs so the map never mutates while batches train concurrently:
  // the trainer calls this serially before handing batches to workers.
  for (const LpTriple& t : pos) {
    uint64_t key = (static_cast<uint64_t>(t.h) << 32) | t.r;
    auto& tails = true_tails_[key];
    if (std::find(tails.begin(), tails.end(), t.t) == tails.end()) {
      tails.push_back(t.t);
    }
  }
}

double TuckEr::StepBatch(const std::vector<LpTriple>& pos, float lr) {
  double loss = 0.0;
  size_t steps = 0;
  uint64_t last_key = ~0ull;
  static const std::vector<uint32_t> kNoTails;
  for (const LpTriple& t : pos) {
    uint64_t key = (static_cast<uint64_t>(t.h) << 32) | t.r;
    if (key == last_key) continue;  // batch-local dedup of queries
    last_key = key;
    auto it = true_tails_.find(key);
    loss += OneToAllStep(t.h, t.r,
                         it != true_tails_.end() ? it->second : kNoTails, lr);
    ++steps;
  }
  return loss / static_cast<double>(std::max<size_t>(1, steps));
}

double TuckEr::TrainPairs(const std::vector<LpTriple>& pos,
                          const std::vector<LpTriple>& neg, float lr) {
  (void)neg;  // 1-N training scores all entities; sampled negatives unused
  AccumulateTargets(pos);
  return StepBatch(pos, lr);
}

double TuckEr::TrainBatch(const std::vector<LpTriple>& pos,
                          const std::vector<LpTriple>& neg, float lr,
                          GradSink* sink) {
  (void)neg;
  (void)sink;
  return StepBatch(pos, lr);
}

}  // namespace openbg::kge
