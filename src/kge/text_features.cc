#include "kge/text_features.h"

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace openbg::kge {

TextFeaturizer::TextFeaturizer(const bench_builder::Dataset& dataset,
                               size_t hash_space)
    : hash_space_(hash_space) {
  const size_t n = dataset.num_entities();
  std::vector<std::vector<std::string>> toks(n);
  for (uint32_t e = 0; e < n; ++e) {
    toks[e] = text::Tokenize(dataset.entity_text[e]);
    for (const std::string& t : toks[e]) vocab_.Observe(t);
  }
  vocab_.Build(/*min_count=*/1);

  features_.resize(n);
  tokens_.resize(n);
  for (uint32_t e = 0; e < n; ++e) {
    auto& feats = features_[e];
    for (const std::string& t : toks[e]) {
      feats.push_back(
          static_cast<uint32_t>(util::Fnv1a64("tok=" + t) % hash_space_));
      for (const std::string& g : text::CharNgrams(t, 3)) {
        feats.push_back(
            static_cast<uint32_t>(util::Fnv1a64("3g=" + g) % hash_space_));
      }
      tokens_[e].push_back(vocab_.Id(t));
    }
    if (feats.empty()) {
      feats.push_back(
          static_cast<uint32_t>(util::Fnv1a64("<empty>") % hash_space_));
    }
  }
}

}  // namespace openbg::kge
