#ifndef OPENBG_KGE_BILINEAR_MODELS_H_
#define OPENBG_KGE_BILINEAR_MODELS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kge/embedding.h"
#include "kge/model.h"

namespace openbg::kge {

/// DistMult (Yang et al. 2015): score = <h, r, t> (trilinear product),
/// trained with pointwise logistic loss over sampled negatives.
class DistMult : public KgeModel {
 public:
  DistMult(size_t num_entities, size_t num_relations, size_t dim,
           util::Rng* rng, float l2 = 1e-5f);

  std::string name() const override { return "DistMult"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void VisitParams(const ParamVisitor& fn) override;
  bool GetTailScanSpec(TailScanSpec* spec) const override;
  void TailScanQuery(uint32_t h, uint32_t r,
                     std::vector<float>* q) const override;

 private:
  void EmitGrad(const LpTriple& t, float dscore, float lr, GradSink* sink);

  size_t dim_;
  float l2_;
  EmbeddingTable ent_, rel_;
};

/// ComplEx (Trouillon et al. 2016): complex-valued embeddings, score =
/// Re(<h, r, conj(t)>). Handles asymmetric relations DistMult cannot.
class ComplEx : public KgeModel {
 public:
  ComplEx(size_t num_entities, size_t num_relations, size_t dim,
          util::Rng* rng, float l2 = 1e-5f);

  std::string name() const override { return "ComplEx"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void VisitParams(const ParamVisitor& fn) override;
  bool GetTailScanSpec(TailScanSpec* spec) const override;
  void TailScanQuery(uint32_t h, uint32_t r,
                     std::vector<float>* q) const override;

 private:
  void EmitGrad(const LpTriple& t, float dscore, float lr, GradSink* sink);

  size_t dim_;  // complex dimension; storage rows are 2*dim_ floats
  float l2_;
  EmbeddingTable ent_, rel_;  // layout: [re(0..d), im(0..d)]
};

/// TuckER (Balazevic et al. 2019): score = W ×1 r ×2 h ×3 t with a shared
/// core tensor W [dr × de × de]. Trained with the original 1-N recipe:
/// each (h, r) is scored against *all* entities with a multi-label BCE
/// against its true tails (the sampled negatives the trainer passes are
/// ignored). The strongest single-modal baseline of Table III; also the
/// most expensive, which is why the paper (and our Table IV bench) skips
/// it on the -L scale.
class TuckEr : public KgeModel {
 public:
  TuckEr(size_t num_entities, size_t num_relations, size_t ent_dim,
         size_t rel_dim, util::Rng* rng, float l2 = 1e-6f);

  std::string name() const override { return "TuckER"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  // 1-N training touches every entity row per query: Hogwild-tolerable
  // (all-float stores) but far too dense to op-log, so no deferred mode —
  // the deterministic trainer runs TuckER serially instead.
  TrainCaps train_caps() const override { return {true, false}; }
  void AccumulateTargets(const std::vector<LpTriple>& pos) override;
  // Steps without touching true_tails_; requires the trainer to have run
  // AccumulateTargets serially for the epoch first. The sink is unused —
  // 1-N updates write tables directly (never handed an OpLogSink, since
  // deferred_grad is false above).
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;

 private:
  double StepBatch(const std::vector<LpTriple>& pos, float lr);
  // M[j*de + k] = sum_i r_i W[i][j][k] for the given relation.
  void RelationMatrix(uint32_t r, std::vector<float>* m) const;
  // One 1-N step for query (h, r) with multi-hot true tails.
  double OneToAllStep(uint32_t h, uint32_t r,
                      const std::vector<uint32_t>& tails, float lr);

  size_t de_, dr_;
  float l2_;
  EmbeddingTable ent_, rel_;
  std::vector<float> core_;  // [dr][de][de]
  // (h, r) -> true tails over the last-seen training stream, built lazily.
  std::unordered_map<uint64_t, std::vector<uint32_t>> true_tails_;
};

}  // namespace openbg::kge

#endif  // OPENBG_KGE_BILINEAR_MODELS_H_
