#include "kge/checkpoint.h"

#include <cstring>
#include <utility>
#include <vector>

#include "nn/matrix.h"
#include "util/fault_injection.h"
#include "util/snapshot.h"
#include "util/string_util.h"

namespace openbg::kge {
namespace {

constexpr char kMagic[] = "OBGCKPT1";
// v2 added the worker-RNG section for Hogwild resume. Version equality is
// strict (util/snapshot.h), so v1 files fail closed with a clear error.
constexpr uint32_t kVersion = 2;

constexpr uint32_t kMetaSection = 1;
constexpr uint32_t kRngSection = 2;
constexpr uint32_t kParamsSection = 3;
constexpr uint32_t kWorkerRngSection = 4;

void PutRngState(util::SnapshotWriter* w, const util::RngState& state) {
  for (uint64_t word : state.s) w->PutU64(word);
  w->PutU8(state.has_cached_normal ? 1 : 0);
  w->PutDouble(state.cached_normal);
}

util::Status ReadRngState(util::SnapshotSection* sec, util::RngState* state) {
  for (uint64_t& word : state->s) OPENBG_RETURN_NOT_OK(sec->ReadU64(&word));
  uint8_t flag;
  OPENBG_RETURN_NOT_OK(sec->ReadU8(&flag));
  if (flag > 1) {
    return util::Status::IoError("checkpoint: invalid RNG flag byte");
  }
  state->has_cached_normal = flag != 0;
  return sec->ReadDouble(&state->cached_normal);
}

struct ParamRef {
  std::string name;
  nn::Matrix* matrix;
};

std::vector<ParamRef> CollectParams(KgeModel* model) {
  std::vector<ParamRef> params;
  model->VisitParams([&params](const std::string& name, nn::Matrix* m) {
    params.push_back({name, m});
  });
  return params;
}

}  // namespace

util::Status SaveCheckpoint(const TrainerCheckpoint& ckpt, KgeModel* model,
                            const std::string& path) {
  util::SnapshotWriter writer(path, kMagic, kVersion);

  writer.BeginSection(kMetaSection);
  writer.PutString(ckpt.model_name);
  writer.PutU64(ckpt.next_epoch);
  writer.PutDouble(ckpt.last_loss);

  writer.BeginSection(kRngSection);
  PutRngState(&writer, ckpt.trainer_rng);
  PutRngState(&writer, ckpt.sampler_rng);

  writer.BeginSection(kParamsSection);
  std::vector<ParamRef> params = CollectParams(model);
  writer.PutU64(params.size());
  for (const ParamRef& p : params) {
    writer.PutString(p.name);
    writer.PutU64(p.matrix->rows());
    writer.PutU64(p.matrix->cols());
    writer.PutFloats(p.matrix->data(), p.matrix->size());
  }

  writer.BeginSection(kWorkerRngSection);
  writer.PutU64(ckpt.worker_rngs.size());
  for (const util::RngState& state : ckpt.worker_rngs) {
    PutRngState(&writer, state);
  }

  return writer.Finish();
}

util::Status LoadCheckpoint(const std::string& path, KgeModel* model,
                            TrainerCheckpoint* ckpt) {
  // Fires before the file is opened, so a "failed" load provably touches
  // neither the model nor the trainer state — what lets the serving layer
  // retry a reload and keep serving generation N on exhaustion.
  if (util::failpoints::Triggered("checkpoint::read")) {
    return util::Status::IoError("checkpoint::read failpoint fired on " +
                                 path);
  }
  util::SnapshotReader reader;
  OPENBG_RETURN_NOT_OK(reader.Open(path, kMagic, kVersion));
  if (reader.num_sections() != 4) {
    return util::Status::IoError(util::StrFormat(
        "%s: expected 4 sections, found %zu", path.c_str(),
        reader.num_sections()));
  }

  TrainerCheckpoint loaded;

  util::SnapshotSection meta = reader.section(0);
  if (meta.tag() != kMetaSection) {
    return util::Status::IoError(util::StrFormat(
        "%s: unexpected section tag %u (want meta=%u)", path.c_str(),
        meta.tag(), kMetaSection));
  }
  OPENBG_RETURN_NOT_OK(meta.ReadString(&loaded.model_name));
  OPENBG_RETURN_NOT_OK(meta.ReadU64(&loaded.next_epoch));
  OPENBG_RETURN_NOT_OK(meta.ReadDouble(&loaded.last_loss));
  if (!meta.AtEnd()) {
    return util::Status::IoError(path + ": trailing bytes in meta section");
  }
  if (loaded.model_name != model->name()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: checkpoint is for model '%s', not '%s'", path.c_str(),
        loaded.model_name.c_str(), model->name().c_str()));
  }

  util::SnapshotSection rngs = reader.section(1);
  if (rngs.tag() != kRngSection) {
    return util::Status::IoError(util::StrFormat(
        "%s: unexpected section tag %u (want rng=%u)", path.c_str(),
        rngs.tag(), kRngSection));
  }
  OPENBG_RETURN_NOT_OK(ReadRngState(&rngs, &loaded.trainer_rng));
  OPENBG_RETURN_NOT_OK(ReadRngState(&rngs, &loaded.sampler_rng));
  if (!rngs.AtEnd()) {
    return util::Status::IoError(path + ": trailing bytes in RNG section");
  }

  util::SnapshotSection params_sec = reader.section(2);
  if (params_sec.tag() != kParamsSection) {
    return util::Status::IoError(util::StrFormat(
        "%s: unexpected section tag %u (want params=%u)", path.c_str(),
        params_sec.tag(), kParamsSection));
  }
  std::vector<ParamRef> params = CollectParams(model);
  uint64_t param_count;
  OPENBG_RETURN_NOT_OK(params_sec.ReadU64(&param_count));
  if (param_count != params.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: checkpoint has %llu parameter blocks, model '%s' exposes %zu",
        path.c_str(), static_cast<unsigned long long>(param_count),
        model->name().c_str(), params.size()));
  }
  // Decode every block into staging buffers before touching the model, so
  // a failure partway through (bad name, shape mismatch, short section)
  // leaves the in-memory parameters exactly as they were.
  std::vector<std::vector<float>> staged(params.size());
  std::string name;
  for (size_t i = 0; i < params.size(); ++i) {
    OPENBG_RETURN_NOT_OK(params_sec.ReadString(&name));
    if (name != params[i].name) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s: parameter %zu is '%s', model expects '%s'", path.c_str(), i,
          name.c_str(), params[i].name.c_str()));
    }
    uint64_t rows, cols;
    OPENBG_RETURN_NOT_OK(params_sec.ReadU64(&rows));
    OPENBG_RETURN_NOT_OK(params_sec.ReadU64(&cols));
    if (rows != params[i].matrix->rows() ||
        cols != params[i].matrix->cols()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s: parameter '%s' has shape %llux%llu, model expects %zux%zu",
          path.c_str(), name.c_str(), static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), params[i].matrix->rows(),
          params[i].matrix->cols()));
    }
    staged[i].resize(params[i].matrix->size());
    OPENBG_RETURN_NOT_OK(
        params_sec.ReadFloats(staged[i].data(), staged[i].size()));
  }
  if (!params_sec.AtEnd()) {
    return util::Status::IoError(path + ": trailing bytes in params section");
  }

  util::SnapshotSection workers = reader.section(3);
  if (workers.tag() != kWorkerRngSection) {
    return util::Status::IoError(util::StrFormat(
        "%s: unexpected section tag %u (want worker-rng=%u)", path.c_str(),
        workers.tag(), kWorkerRngSection));
  }
  uint64_t worker_count;
  OPENBG_RETURN_NOT_OK(workers.ReadU64(&worker_count));
  if (worker_count > 4096) {
    return util::Status::IoError(util::StrFormat(
        "%s: implausible worker-RNG count %llu", path.c_str(),
        static_cast<unsigned long long>(worker_count)));
  }
  loaded.worker_rngs.resize(worker_count);
  for (uint64_t i = 0; i < worker_count; ++i) {
    OPENBG_RETURN_NOT_OK(ReadRngState(&workers, &loaded.worker_rngs[i]));
  }
  if (!workers.AtEnd()) {
    return util::Status::IoError(path +
                                 ": trailing bytes in worker-RNG section");
  }

  for (size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i].matrix->data(), staged[i].data(),
                staged[i].size() * sizeof(float));
  }
  *ckpt = std::move(loaded);
  return util::Status::OK();
}

}  // namespace openbg::kge
