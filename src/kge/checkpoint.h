#ifndef OPENBG_KGE_CHECKPOINT_H_
#define OPENBG_KGE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "kge/model.h"
#include "util/rng.h"
#include "util/status.h"

namespace openbg::kge {

/// Trainer-side state persisted alongside the model parameters so a run
/// killed between epochs resumes bit-identically: the epoch to run next,
/// the last completed epoch's mean loss, and the RNG streams (the trainer's
/// shuffle RNG, the negative sampler's corruption RNG, and — for Hogwild
/// runs — each worker's private corruption stream).
struct TrainerCheckpoint {
  std::string model_name;
  uint64_t next_epoch = 0;
  double last_loss = 0.0;
  util::RngState trainer_rng;
  util::RngState sampler_rng;
  /// One stream per Hogwild worker, indexed by worker id. Empty for serial
  /// and deterministic-mode runs (their streams are derived statelessly).
  std::vector<util::RngState> worker_rngs;
};

/// Writes `ckpt` plus every parameter block `model` exposes via
/// VisitParams to `path` (atomically, CRC-checked; see util/snapshot.h).
/// Models whose VisitParams is the no-op default produce a trainer-state-
/// only checkpoint.
util::Status SaveCheckpoint(const TrainerCheckpoint& ckpt, KgeModel* model,
                            const std::string& path);

/// Restores a checkpoint into `model` (shapes and parameter names must
/// match what the model exposes, and the stored model name must equal
/// model->name()) and fills `ckpt` with the trainer state. Fails closed:
/// on any error the model's parameters are left untouched.
util::Status LoadCheckpoint(const std::string& path, KgeModel* model,
                            TrainerCheckpoint* ckpt);

}  // namespace openbg::kge

#endif  // OPENBG_KGE_CHECKPOINT_H_
