#include "kge/grad_sink.h"

#include "nn/kernels.h"

namespace openbg::kge {
namespace {

// Shared by the direct sink and the replay path so a deferred run applies
// bit-for-bit the same arithmetic a direct run would.
inline void ApplyAxpy(nn::Matrix* m, uint32_t row, float alpha,
                      const float* x, size_t n) {
  nn::Axpy(alpha, x, m->Row(row), n);
}

inline void ApplyProject(nn::Matrix* m, uint32_t row) {
  float* r = m->Row(row);
  float norm = nn::Norm2(r, m->cols());
  if (norm > 1.0f) nn::Scale(1.0f / norm, r, m->cols());
}

inline void ApplyNormalize(nn::Matrix* m, uint32_t row) {
  float* r = m->Row(row);
  float norm = nn::Norm2(r, m->cols());
  if (norm > 1e-12f) nn::Scale(1.0f / norm, r, m->cols());
}

}  // namespace

void DirectGradSink::AxpyRow(nn::Matrix* m, uint32_t row, float alpha,
                             const float* x, size_t n) {
  ApplyAxpy(m, row, alpha, x, n);
}

void DirectGradSink::ProjectToUnitBall(nn::Matrix* m, uint32_t row) {
  ApplyProject(m, row);
}

void DirectGradSink::NormalizeRow(nn::Matrix* m, uint32_t row) {
  ApplyNormalize(m, row);
}

void OpLogSink::AxpyRow(nn::Matrix* m, uint32_t row, float alpha,
                        const float* x, size_t n) {
  size_t offset = data_.size();
  data_.insert(data_.end(), x, x + n);
  ops_.push_back({OpKind::kAxpy, m, row, alpha,
                  static_cast<uint32_t>(n), offset});
}

void OpLogSink::ProjectToUnitBall(nn::Matrix* m, uint32_t row) {
  ops_.push_back({OpKind::kProject, m, row, 0.0f, 0, 0});
}

void OpLogSink::NormalizeRow(nn::Matrix* m, uint32_t row) {
  ops_.push_back({OpKind::kNormalize, m, row, 0.0f, 0, 0});
}

void OpLogSink::Replay() {
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kAxpy:
        ApplyAxpy(op.m, op.row, op.alpha, data_.data() + op.offset, op.len);
        break;
      case OpKind::kProject:
        ApplyProject(op.m, op.row);
        break;
      case OpKind::kNormalize:
        ApplyNormalize(op.m, op.row);
        break;
    }
  }
}

void OpLogSink::Clear() {
  ops_.clear();
  data_.clear();
}

}  // namespace openbg::kge
