#include "kge/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "kge/checkpoint.h"
#include "kge/grad_sink.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace openbg::kge {
namespace {

/// Which execution path an epoch uses, resolved once per run from the
/// config and the model's TrainCaps.
enum class Strategy { kSerial, kHogwild, kDeterministic };

/// Neumaier-compensated sum of the per-batch losses, folded in batch-index
/// order. The fold order is fixed regardless of which thread produced each
/// loss, so every strategy reports the same epoch loss for the same
/// per-batch values — and the compensation keeps long epochs from drifting
/// the way the old naive `+=` accumulation did.
double FoldLosses(const std::vector<double>& losses) {
  double sum = 0.0;
  double comp = 0.0;
  for (double x : losses) {
    double t = sum + x;
    if (std::fabs(sum) >= std::fabs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

/// Stateless per-batch corruption seed for deterministic mode: every batch
/// draws from its own stream derived from (run seed, epoch, batch index),
/// so the negatives a batch sees do not depend on which worker ran it or on
/// how many workers exist.
uint64_t BatchSeed(uint64_t run_seed, size_t epoch, size_t batch_index) {
  uint64_t tag = (static_cast<uint64_t>(epoch) << 32) ^
                 static_cast<uint64_t>(batch_index);
  return util::SplitMix64(run_seed ^ util::SplitMix64(tag));
}

}  // namespace

double TrainKgeModel(KgeModel* model, const Dataset& dataset,
                     const TrainConfig& config) {
  OPENBG_CHECK(!dataset.train.empty());
  NegativeSampler sampler(dataset, config.negatives, config.seed ^ 0x5EED);
  util::Rng rng(config.seed);
  std::vector<size_t> order(dataset.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const size_t threads =
      config.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : config.num_threads;
  const TrainCaps caps = model->train_caps();

  // Resolve the execution strategy. The serial loop is always correct;
  // the parallel strategies are only entered when the model's caps permit.
  // Deterministic mode uses the round-based path even at one thread so its
  // arithmetic is the same function of the data at every thread count.
  Strategy strategy = Strategy::kSerial;
  if (config.mode == TrainMode::kDeterministic) {
    if (caps.deferred_grad) {
      strategy = Strategy::kDeterministic;
    } else if (threads > 1) {
      OPENBG_LOG(Warning)
          << model->name()
          << ": does not support deferred gradients; deterministic "
             "training falls back to the serial loop";
    }
  } else if (threads > 1) {
    if (caps.hogwild_safe) {
      strategy = Strategy::kHogwild;
    } else {
      OPENBG_LOG(Warning)
          << model->name()
          << ": not Hogwild-safe; training falls back to the serial loop";
    }
  }

  // A model that exposes no parameter blocks cannot be meaningfully
  // restored — "resuming" it would skip training and leave random init.
  // Checkpointing is disabled outright for such models.
  bool checkpointable = false;
  model->VisitParams(
      [&checkpointable](const std::string&, nn::Matrix*) {
        checkpointable = true;
      });
  const bool use_checkpoints = !config.checkpoint_path.empty() &&
                               checkpointable;
  if (!config.checkpoint_path.empty() && !checkpointable) {
    OPENBG_LOG(Warning) << model->name()
                        << ": exposes no parameters via VisitParams; "
                           "checkpointing disabled for this run";
  }

  size_t start_epoch = 0;
  double last_loss = 0.0;
  bool resumed = false;
  TrainerCheckpoint resume_ckpt;
  if (use_checkpoints && config.resume &&
      util::FileExists(config.checkpoint_path)) {
    OPENBG_CHECK_OK(
        LoadCheckpoint(config.checkpoint_path, model, &resume_ckpt));
    resumed = true;
    start_epoch = static_cast<size_t>(resume_ckpt.next_epoch);
    last_loss = resume_ckpt.last_loss;
    OPENBG_LOG(Info) << model->name() << ": resumed from "
                     << config.checkpoint_path << " at epoch " << start_epoch;
    if (start_epoch >= config.epochs) return last_loss;
    // The shuffled batch order is trainer state too: each epoch permutes
    // `order` in place, so replay the completed epochs' shuffles before
    // making the checkpointed RNG streams authoritative. With an unchanged
    // seed the replay lands `rng` exactly on `ckpt.trainer_rng`, giving a
    // resume that is bit-identical to an uninterrupted run.
    for (size_t e = 0; e < start_epoch; ++e) rng.Shuffle(&order);
    rng.SetState(resume_ckpt.trainer_rng);
    sampler.RestoreRngState(resume_ckpt.sampler_rng);
  }

  // Hogwild workers each own a corruption stream, derived from the run seed
  // and the worker id — or restored from the checkpoint so a resumed run
  // draws exactly the negatives an uninterrupted one would have. Shard
  // boundaries (ParallelFor) depend only on (batch count, thread count),
  // so stream consumption per worker is deterministic even though the
  // parameter updates race.
  std::vector<util::Rng> worker_rngs;
  if (strategy == Strategy::kHogwild) {
    worker_rngs.reserve(threads);
    for (size_t w = 0; w < threads; ++w) {
      worker_rngs.emplace_back(config.seed ^
                               util::SplitMix64(static_cast<uint64_t>(w)));
    }
    if (resumed && !resume_ckpt.worker_rngs.empty()) {
      if (resume_ckpt.worker_rngs.size() == threads) {
        for (size_t w = 0; w < threads; ++w) {
          worker_rngs[w].SetState(resume_ckpt.worker_rngs[w]);
        }
      } else {
        OPENBG_LOG(Warning)
            << model->name() << ": checkpoint has "
            << resume_ckpt.worker_rngs.size() << " worker RNG streams but "
            << threads << " threads requested; reseeding worker streams";
      }
    }
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1 && strategy != Strategy::kSerial) {
    pool = std::make_unique<util::ThreadPool>(threads);
  }

  const size_t batch_size = std::max<size_t>(1, config.batch_size);
  const size_t num_batches = (order.size() + batch_size - 1) / batch_size;
  const size_t round = std::max<size_t>(1, config.round_batches);

  // Reused across batches and epochs: these buffers reach full capacity
  // within the first epoch and never reallocate again.
  std::vector<LpTriple> batch, negs;
  batch.reserve(std::min<size_t>(batch_size, order.size()));
  std::vector<double> losses(num_batches, 0.0);
  // Deterministic-round staging, sized to the round width.
  std::vector<std::vector<LpTriple>> round_pos;
  std::vector<std::vector<LpTriple>> round_negs;
  std::vector<OpLogSink> round_sinks;
  if (strategy == Strategy::kDeterministic) {
    round_pos.resize(std::min(round, num_batches));
    round_negs.resize(round_pos.size());
    round_sinks.resize(round_pos.size());
  }

  auto fill_batch = [&](size_t b, std::vector<LpTriple>* out) {
    size_t begin = b * batch_size;
    size_t end = std::min(begin + batch_size, order.size());
    out->clear();
    for (size_t i = begin; i < end; ++i) {
      out->push_back(dataset.train[order[i]]);
    }
  };

  for (size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);

    switch (strategy) {
      case Strategy::kSerial: {
        // The classic loop, arithmetic untouched: models self-accumulate
        // any bookkeeping inside TrainPairs, exactly as before.
        for (size_t b = 0; b < num_batches; ++b) {
          fill_batch(b, &batch);
          sampler.CorruptBatch(batch, &negs);
          losses[b] = model->TrainPairs(batch, negs, config.lr);
          model->PostStep();
        }
        break;
      }

      case Strategy::kHogwild: {
        // Serial pre-pass for order-sensitive bookkeeping (TuckER's target
        // index), then lock-free sharded training. Each worker corrupts
        // with its own stream and applies updates through a DirectGradSink,
        // racing only on float stores.
        for (size_t b = 0; b < num_batches; ++b) {
          fill_batch(b, &batch);
          model->AccumulateTargets(batch);
        }
        util::ParallelFor(
            pool.get(), num_batches,
            [&](size_t shard, size_t begin, size_t end) {
              util::Rng* wrng = &worker_rngs[shard];
              DirectGradSink sink;
              std::vector<LpTriple> wbatch, wnegs;
              wbatch.reserve(batch_size);
              for (size_t b = begin; b < end; ++b) {
                fill_batch(b, &wbatch);
                sampler.CorruptBatch(wbatch, &wnegs, wrng);
                losses[b] = model->TrainBatch(wbatch, wnegs, config.lr,
                                              &sink);
                model->PostStep();
              }
            });
        break;
      }

      case Strategy::kDeterministic: {
        // Rounds of up to `round` batches: gradients are computed in
        // parallel from the round-start parameters into per-batch op logs,
        // then replayed serially in batch order. Both the op stream and
        // the per-batch losses are pure functions of (params, data, seed,
        // epoch, batch index), so any thread count produces bit-identical
        // results.
        for (size_t r0 = 0; r0 < num_batches; r0 += round) {
          const size_t width = std::min(round, num_batches - r0);
          for (size_t i = 0; i < width; ++i) {
            fill_batch(r0 + i, &round_pos[i]);
            model->AccumulateTargets(round_pos[i]);
          }
          util::ParallelFor(
              pool.get(), width, [&](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  const size_t b = r0 + i;
                  util::Rng brng(BatchSeed(config.seed, epoch, b));
                  sampler.CorruptBatch(round_pos[i], &round_negs[i], &brng);
                  round_sinks[i].Clear();
                  losses[b] = model->TrainBatch(round_pos[i], round_negs[i],
                                                config.lr, &round_sinks[i]);
                }
              });
          for (size_t i = 0; i < width; ++i) {
            round_sinks[i].Replay();
            model->PostStep();
          }
        }
        break;
      }
    }

    last_loss =
        FoldLosses(losses) / static_cast<double>(std::max<size_t>(1, num_batches));
    if (config.on_epoch) config.on_epoch(epoch, last_loss);

    if (use_checkpoints &&
        (epoch + 1) % std::max<size_t>(1, config.checkpoint_every) == 0) {
      TrainerCheckpoint ckpt;
      ckpt.model_name = model->name();
      ckpt.next_epoch = epoch + 1;
      ckpt.last_loss = last_loss;
      ckpt.trainer_rng = rng.GetState();
      ckpt.sampler_rng = sampler.rng_state();
      for (const util::Rng& wrng : worker_rngs) {
        ckpt.worker_rngs.push_back(wrng.GetState());
      }
      OPENBG_CHECK_OK(SaveCheckpoint(ckpt, model, config.checkpoint_path));
    }
  }
  return last_loss;
}

}  // namespace openbg::kge
