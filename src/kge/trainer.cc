#include "kge/trainer.h"

#include <algorithm>

#include "kge/checkpoint.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"

namespace openbg::kge {

double TrainKgeModel(KgeModel* model, const Dataset& dataset,
                     const TrainConfig& config) {
  OPENBG_CHECK(!dataset.train.empty());
  NegativeSampler sampler(dataset, config.negatives, config.seed ^ 0x5EED);
  util::Rng rng(config.seed);
  std::vector<size_t> order(dataset.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // A model that exposes no parameter blocks cannot be meaningfully
  // restored — "resuming" it would skip training and leave random init.
  // Checkpointing is disabled outright for such models.
  bool checkpointable = false;
  model->VisitParams(
      [&checkpointable](const std::string&, nn::Matrix*) {
        checkpointable = true;
      });
  const bool use_checkpoints = !config.checkpoint_path.empty() &&
                               checkpointable;
  if (!config.checkpoint_path.empty() && !checkpointable) {
    OPENBG_LOG(Warning) << model->name()
                        << ": exposes no parameters via VisitParams; "
                           "checkpointing disabled for this run";
  }

  size_t start_epoch = 0;
  double last_loss = 0.0;
  if (use_checkpoints && config.resume &&
      util::FileExists(config.checkpoint_path)) {
    TrainerCheckpoint ckpt;
    OPENBG_CHECK_OK(LoadCheckpoint(config.checkpoint_path, model, &ckpt));
    start_epoch = static_cast<size_t>(ckpt.next_epoch);
    last_loss = ckpt.last_loss;
    OPENBG_LOG(Info) << model->name() << ": resumed from "
                     << config.checkpoint_path << " at epoch " << start_epoch;
    if (start_epoch >= config.epochs) return last_loss;
    // The shuffled batch order is trainer state too: each epoch permutes
    // `order` in place, so replay the completed epochs' shuffles before
    // making the checkpointed RNG streams authoritative. With an unchanged
    // seed the replay lands `rng` exactly on `ckpt.trainer_rng`, giving a
    // resume that is bit-identical to an uninterrupted run.
    for (size_t e = 0; e < start_epoch; ++e) rng.Shuffle(&order);
    rng.SetState(ckpt.trainer_rng);
    sampler.RestoreRngState(ckpt.sampler_rng);
  }

  // Reused across batches and epochs: both vectors reach full batch
  // capacity within the first epoch and never reallocate again.
  std::vector<LpTriple> batch, negs;
  batch.reserve(std::min<size_t>(config.batch_size, order.size()));
  for (size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t pos = 0; pos < order.size(); pos += config.batch_size) {
      size_t end = std::min(pos + config.batch_size, order.size());
      batch.clear();
      for (size_t i = pos; i < end; ++i) {
        batch.push_back(dataset.train[order[i]]);
      }
      sampler.CorruptBatch(batch, &negs);
      epoch_loss += model->TrainPairs(batch, negs, config.lr);
      model->PostStep();
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<size_t>(1, batches));
    if (config.on_epoch) config.on_epoch(epoch, last_loss);

    if (use_checkpoints &&
        (epoch + 1) % std::max<size_t>(1, config.checkpoint_every) == 0) {
      TrainerCheckpoint ckpt;
      ckpt.model_name = model->name();
      ckpt.next_epoch = epoch + 1;
      ckpt.last_loss = last_loss;
      ckpt.trainer_rng = rng.GetState();
      ckpt.sampler_rng = sampler.rng_state();
      OPENBG_CHECK_OK(SaveCheckpoint(ckpt, model, config.checkpoint_path));
    }
  }
  return last_loss;
}

}  // namespace openbg::kge
