#include "kge/trainer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace openbg::kge {

double TrainKgeModel(KgeModel* model, const Dataset& dataset,
                     const TrainConfig& config) {
  OPENBG_CHECK(!dataset.train.empty());
  NegativeSampler sampler(dataset, config.negatives, config.seed ^ 0x5EED);
  util::Rng rng(config.seed);
  std::vector<size_t> order(dataset.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double last_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t pos = 0; pos < order.size(); pos += config.batch_size) {
      std::vector<LpTriple> batch;
      size_t end = std::min(pos + config.batch_size, order.size());
      batch.reserve(end - pos);
      for (size_t i = pos; i < end; ++i) {
        batch.push_back(dataset.train[order[i]]);
      }
      std::vector<LpTriple> negs = sampler.CorruptBatch(batch);
      epoch_loss += model->TrainPairs(batch, negs, config.lr);
      model->PostStep();
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<size_t>(1, batches));
    if (config.on_epoch) config.on_epoch(epoch, last_loss);
  }
  return last_loss;
}

}  // namespace openbg::kge
