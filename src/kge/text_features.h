#ifndef OPENBG_KGE_TEXT_FEATURES_H_
#define OPENBG_KGE_TEXT_FEATURES_H_

#include <cstdint>
#include <vector>

#include "bench_builder/dataset.h"
#include "text/vocabulary.h"

namespace openbg::kge {

/// Shared text front-end for the LM-based baselines: per-entity hashed
/// lexical features (tokens + character trigrams) for the encoder models,
/// and a closed token vocabulary for the generative model.
class TextFeaturizer {
 public:
  TextFeaturizer(const bench_builder::Dataset& dataset, size_t hash_space);

  /// Hashed feature bag of entity `e` (ids already reduced mod hash_space).
  const std::vector<uint32_t>& EntityFeatures(uint32_t e) const {
    return features_[e];
  }
  const std::vector<std::vector<uint32_t>>& all_features() const {
    return features_;
  }

  /// Vocabulary token ids of entity `e`'s text (for generative scoring).
  const std::vector<uint32_t>& EntityTokens(uint32_t e) const {
    return tokens_[e];
  }

  size_t hash_space() const { return hash_space_; }
  size_t vocab_size() const { return vocab_.size(); }

 private:
  size_t hash_space_;
  text::Vocabulary vocab_;
  std::vector<std::vector<uint32_t>> features_;
  std::vector<std::vector<uint32_t>> tokens_;
};

}  // namespace openbg::kge

#endif  // OPENBG_KGE_TEXT_FEATURES_H_
