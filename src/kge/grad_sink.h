#ifndef OPENBG_KGE_GRAD_SINK_H_
#define OPENBG_KGE_GRAD_SINK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace openbg::kge {

/// Where a model's TrainBatch sends its parameter updates. Models compute
/// gradients from the *current* table contents (reads are never routed) and
/// emit every write as one of three ops, in the exact order the legacy
/// in-place code applied them:
///
///   * AxpyRow          row += alpha * x   (the sparse-SGD workhorse)
///   * ProjectToUnitBall  rescale a row to unit L2 norm iff it exceeds 1
///   * NormalizeRow       rescale a row to exactly unit L2 norm
///
/// Two implementations exist. DirectGradSink applies each op immediately,
/// preserving the classic sequential-SGD semantics (each pair's update is
/// visible to the next pair's score) — this is what the serial and Hogwild
/// training paths use. OpLogSink records the op stream instead; the
/// deterministic trainer runs one sink per batch, computes every batch of a
/// round against the round-start parameter snapshot, then replays the logs
/// serially in batch order, which makes training bit-identical at any
/// thread count.
class GradSink {
 public:
  virtual ~GradSink() = default;

  /// m->Row(row)[0..n) += alpha * x[0..n). `x` is only guaranteed to stay
  /// valid for the duration of the call — deferring sinks must copy it.
  virtual void AxpyRow(nn::Matrix* m, uint32_t row, float alpha,
                       const float* x, size_t n) = 0;

  /// Rescales the row to unit L2 norm if it exceeds 1 (TransE constraint).
  /// The norm is read at *apply* time, so a deferred projection sees every
  /// previously replayed update to the row — same as the direct order.
  virtual void ProjectToUnitBall(nn::Matrix* m, uint32_t row) = 0;

  /// Rescales the row to exactly unit L2 norm (TransH normal constraint).
  virtual void NormalizeRow(nn::Matrix* m, uint32_t row) = 0;
};

/// Applies every op in place as it arrives. The arithmetic matches the
/// EmbeddingTable helpers (nn::Axpy / Norm2 / Scale), so routing a model's
/// legacy update loop through this sink is numerically the identity
/// refactoring.
class DirectGradSink final : public GradSink {
 public:
  void AxpyRow(nn::Matrix* m, uint32_t row, float alpha, const float* x,
               size_t n) override;
  void ProjectToUnitBall(nn::Matrix* m, uint32_t row) override;
  void NormalizeRow(nn::Matrix* m, uint32_t row) override;
};

/// Records the op stream; Replay() applies it in emission order with the
/// exact arithmetic DirectGradSink uses. One OpLogSink per batch, reused
/// across rounds (Clear() keeps the buffers' capacity), so the deterministic
/// trainer allocates only on the first round.
class OpLogSink final : public GradSink {
 public:
  void AxpyRow(nn::Matrix* m, uint32_t row, float alpha, const float* x,
               size_t n) override;
  void ProjectToUnitBall(nn::Matrix* m, uint32_t row) override;
  void NormalizeRow(nn::Matrix* m, uint32_t row) override;

  /// Applies the recorded ops in order. Safe to call exactly once per
  /// recording; call Clear() before reuse.
  void Replay();

  /// Drops the recorded ops, keeping the buffers' capacity.
  void Clear();

  size_t num_ops() const { return ops_.size(); }

 private:
  enum class OpKind : uint8_t { kAxpy, kProject, kNormalize };

  struct Op {
    OpKind kind;
    nn::Matrix* m;
    uint32_t row;
    float alpha;
    uint32_t len;     // floats in data_ (kAxpy only)
    size_t offset;    // start in data_ (kAxpy only)
  };

  std::vector<Op> ops_;
  std::vector<float> data_;
};

}  // namespace openbg::kge

#endif  // OPENBG_KGE_GRAD_SINK_H_
