#ifndef OPENBG_KGE_MODEL_H_
#define OPENBG_KGE_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_builder/dataset.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace openbg::kge {

class GradSink;

using bench_builder::Dataset;
using bench_builder::LpTriple;

/// What the parallel trainer may do with a model (see kge/trainer.h).
/// Conservative by default: a model that declares nothing runs serially
/// under every mode, which is always correct — these flags only unlock
/// faster execution strategies.
struct TrainCaps {
  /// TrainBatch may be called concurrently from several threads on shared
  /// parameters (classic Hogwild). Requires: no internal mutable state
  /// besides the float tables themselves (racing float stores are the
  /// accepted Hogwild hazard; racing container mutations are not), and a
  /// PostStep that is a no-op or thread-safe.
  bool hogwild_safe = false;
  /// TrainBatch routes *every* parameter write through the GradSink it is
  /// given (never mutating state behind the sink's back), so an OpLogSink
  /// captures the complete update and the deterministic trainer can defer
  /// and replay it. Models with dense per-step internal state (1-N losses,
  /// layer activation caches) cannot affordably defer and leave this false.
  bool deferred_grad = false;
};

/// How a model's ScoreTails reduces to a scan of one fixed entity-side
/// table — the seam the ANN subsystem (src/ann) builds its quantized IVF
/// index against. A model exposes this only when, for every tail t,
///   ScoreTails(h, r)[t] == metric(query(h, r), table row t)
/// with a query that depends on (h, r) alone. The table pointer aliases
/// live model parameters: valid while the model is alive and not training.
struct TailScanSpec {
  enum class Metric {
    kNegL1,  // score = -sum_i |q[i] - row[i]|
    kDot,    // score = sum_i  q[i] * row[i]
  };
  Metric metric = Metric::kDot;
  const nn::Matrix* table = nullptr;  // one row per entity; query width = cols
};

/// Base interface for every link-prediction baseline of Tables III/IV.
///
/// Scoring convention: **higher score = more plausible triple** for all
/// models; distance-based models return negated distances. Training is one
/// SGD step per TrainPairs call on aligned positive/negative triples; each
/// model owns its loss (margin ranking for translational models, pointwise
/// logistic for bilinear/text/multimodal ones), mirroring each original
/// paper's recipe.
///
/// Thread-safety contract: after PrepareEval() returns, ScoreTriple /
/// ScoreTails / ScoreHeads must be safe to call concurrently from multiple
/// threads — i.e., genuinely const, with any lazy caches (text encodings,
/// fused multimodal tables) filled inside PrepareEval, never during
/// scoring. The parallel RankingEvaluator relies on this.
class KgeModel {
 public:
  KgeModel(size_t num_entities, size_t num_relations)
      : num_entities_(num_entities), num_relations_(num_relations) {}
  virtual ~KgeModel() = default;

  KgeModel(const KgeModel&) = delete;
  KgeModel& operator=(const KgeModel&) = delete;

  virtual std::string name() const = 0;

  /// Plausibility score of one triple (higher = better).
  virtual float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const = 0;

  /// Scores (h, r, t') for every candidate tail t'. Default loops over
  /// ScoreTriple; models override with vectorized paths where ranking all
  /// entities would otherwise be quadratic in embedding work.
  virtual void ScoreTails(uint32_t h, uint32_t r,
                          std::vector<float>* out) const;

  /// Scores (h', r, t) for every candidate head h'.
  virtual void ScoreHeads(uint32_t r, uint32_t t,
                          std::vector<float>* out) const;

  /// One SGD step on aligned positive/negative batches (same length);
  /// returns the batch loss before the update.
  virtual double TrainPairs(const std::vector<LpTriple>& pos,
                            const std::vector<LpTriple>& neg, float lr) = 0;

  /// What the parallel trainer may do with this model. The default opts out
  /// of every parallel strategy; see TrainCaps.
  virtual TrainCaps train_caps() const { return {}; }

  /// Sink-routed training step: like TrainPairs, but every parameter write
  /// goes through `sink`. Models that support deferred gradients override
  /// this (and implement TrainPairs as TrainBatch over a DirectGradSink);
  /// the default ignores the sink and falls back to TrainPairs, which is
  /// only correct when the trainer applies batches serially — exactly what
  /// it does for models whose caps don't claim more.
  virtual double TrainBatch(const std::vector<LpTriple>& pos,
                            const std::vector<LpTriple>& neg, float lr,
                            GradSink* sink) {
    (void)sink;
    return TrainPairs(pos, neg, lr);
  }

  /// Serial pre-pass over a training batch, called by the trainer *before*
  /// TrainBatch may run on a worker thread. This is where a model updates
  /// order-sensitive bookkeeping that must not race — e.g. TuckER's
  /// (h, r) -> true-tails index. Default: nothing.
  virtual void AccumulateTargets(const std::vector<LpTriple>& pos) {
    (void)pos;
  }

  /// Constraint projection hook, run after each TrainPairs (e.g., TransH's
  /// unit-norm hyperplane normals).
  virtual void PostStep() {}

  /// Called once before ranking evaluation (e.g., text models precompute
  /// entity encodings here).
  virtual void PrepareEval() {}

  /// Visitor over every trainable dense parameter block, as stable
  /// (name, matrix) pairs — the serialization hook checkpointing uses.
  /// Names and visit order must be deterministic for a given model shape.
  using ParamVisitor = std::function<void(const std::string&, nn::Matrix*)>;

  /// Default visits nothing: such a model opts out of checkpoint/resume
  /// entirely (the trainer refuses to save or resume a checkpoint whose
  /// parameters it could not restore).
  virtual void VisitParams(const ParamVisitor& fn) { (void)fn; }

  /// Fills `spec` and returns true when tail scoring is a fixed-table scan
  /// (TransE, DistMult, ComplEx). Models whose candidate side is relation-
  /// dependent (TransH/TransD projections, TuckER's core contraction) keep
  /// the default `false` and always take the exact O(E) path.
  virtual bool GetTailScanSpec(TailScanSpec* spec) const {
    (void)spec;
    return false;
  }

  /// Writes the scan query for (h, r): bit-identical arithmetic to the
  /// query construction inside this model's ScoreTails, so an exact float
  /// rescore through the spec's metric reproduces ScoreTails scores to the
  /// byte. Only meaningful when GetTailScanSpec returned true; the default
  /// clears `q`.
  virtual void TailScanQuery(uint32_t h, uint32_t r,
                             std::vector<float>* q) const {
    (void)h;
    (void)r;
    q->clear();
  }

  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }

 protected:
  size_t num_entities_;
  size_t num_relations_;
};

}  // namespace openbg::kge

#endif  // OPENBG_KGE_MODEL_H_
