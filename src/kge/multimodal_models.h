#ifndef OPENBG_KGE_MULTIMODAL_MODELS_H_
#define OPENBG_KGE_MULTIMODAL_MODELS_H_

#include <atomic>
#include <string>
#include <vector>

#include "kge/embedding.h"
#include "kge/model.h"
#include "kge/text_features.h"
#include "nn/layers.h"

namespace openbg::kge {

/// Shared plumbing for the Table-III multimodal baselines: fixed per-entity
/// image feature vectors (zero vector when the entity has no image, flagged
/// separately) plus a learned linear projection into embedding space.
class MultimodalBase : public KgeModel {
 protected:
  MultimodalBase(const Dataset& dataset, size_t dim, util::Rng* rng);

  /// Projects entity e's image into `out` (dim_); returns false (and leaves
  /// `out` zeroed) when the entity has no image.
  bool ProjectImage(uint32_t e, float* out) const;

  /// d(projection)/d(out-gradient): accumulates into proj_ with SGD.
  void UpdateProjection(uint32_t e, const float* dout, float lr);

  /// Sink-routed UpdateProjection: identical arithmetic through a
  /// DirectGradSink, or recorded for ordered replay through an OpLogSink.
  void EmitProjectionUpdate(uint32_t e, const float* dout, float lr,
                            GradSink* sink);

  size_t dim_;
  size_t image_dim_;
  /// Scales the projected image contribution; distance-based fusions use a
  /// small factor so the visual channel augments rather than swamps the
  /// norm-constrained structural embeddings.
  float image_scale_ = 1.0f;
  std::vector<const float*> image_ptr_;  // nullptr when absent
  nn::Matrix proj_;  // [image_dim x dim]
};

/// TransAE (Wang et al. 2019): TransE over embeddings fused with
/// autoencoded visual features. Entity representation = structural
/// embedding + encoder(image); a linear decoder reconstructs the image,
/// and the reconstruction loss co-trains the encoder.
class TransAeModel : public MultimodalBase {
 public:
  TransAeModel(const Dataset& dataset, size_t dim, float margin,
               float recon_weight, util::Rng* rng);

  std::string name() const override { return "TransAE"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void PrepareEval() override;

 private:
  void Fused(uint32_t e, float* out) const;
  void EmitGrad(const LpTriple& t, float direction, float lr, GradSink* sink);
  double EmitReconStep(uint32_t e, float lr, GradSink* sink);

  float margin_;
  float recon_weight_;
  EmbeddingTable ent_, rel_;
  nn::Matrix decoder_;  // [dim x image_dim]
  mutable nn::Matrix fused_cache_;
  std::atomic<bool> cache_valid_{false};
};

/// RSME (Wang et al. 2021): a learned per-dimension *filter gate* decides
/// how much visual signal enters each entity representation (and a "forget"
/// path suppresses images for entities where vision misleads — entities
/// without images fall back fully to structure). Scoring is translational
/// (margin-ranked L1 distance) over the gated representations, so the gate
/// can only improve on the structural baseline it wraps.
class RsmeModel : public MultimodalBase {
 public:
  RsmeModel(const Dataset& dataset, size_t dim, float margin,
            util::Rng* rng);

  std::string name() const override { return "RSME"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void PrepareEval() override;

 private:
  // fused = sigmoid(gate) * struct + (1 - sigmoid(gate)) * proj(img).
  void Fused(uint32_t e, float* out) const;
  void EmitGrad(const LpTriple& t, float direction, float lr, GradSink* sink);

  float margin_;
  EmbeddingTable ent_, rel_;
  nn::Matrix gate_;  // [1 x dim], pre-sigmoid
  mutable nn::Matrix fused_cache_;
  std::atomic<bool> cache_valid_{false};
};

/// MKGformer stand-in ("MkgFusion"): multi-level fusion of three channels —
/// structure, text and image — each contributing a translational distance
/// against its own relation embedding, combined with learned softmax
/// channel weights. The channel-attention mirrors MKGformer's level-wise
/// fusion at laptop scale.
class MkgFusionModel : public MultimodalBase {
 public:
  MkgFusionModel(const Dataset& dataset, size_t dim, float margin,
                 util::Rng* rng, size_t hash_space = 1 << 16);

  std::string name() const override { return "MKGformer(Fusion)"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void PrepareEval() override;

 private:
  static constexpr size_t kChannels = 3;  // structure / text / image

  void ChannelVectors(uint32_t e, nn::Matrix* out) const;  // [3 x dim]
  void ChannelWeights(float* w) const;                     // softmax(3)
  // Weighted channel distance of one triple, with per-channel distances in
  // `d_out` (size kChannels) when non-null.
  float WeightedDistance(uint32_t h, uint32_t r, uint32_t t,
                         float* d_out) const;
  // Emits the margin-ranking gradient for one triple. The text channel
  // updates the bag table rows directly through the sink (one AxpyRow per
  // bag feature) instead of staging through the shared Parameter::grad
  // buffer, so concurrent batches never race on grad accumulation.
  void EmitGrad(const LpTriple& t, float direction, float lr, GradSink* sink);

  float margin_;
  TextFeaturizer features_;
  EmbeddingTable ent_, rel_struct_, rel_text_, rel_image_;
  nn::EmbeddingBag text_emb_;
  nn::Matrix channel_logits_;  // [1 x 3]
  mutable std::vector<nn::Matrix> channel_cache_;  // per channel [E x dim]
  std::atomic<bool> cache_valid_{false};
};

}  // namespace openbg::kge

#endif  // OPENBG_KGE_MULTIMODAL_MODELS_H_
