#ifndef OPENBG_KGE_TRANS_MODELS_H_
#define OPENBG_KGE_TRANS_MODELS_H_

#include <string>
#include <vector>

#include "kge/embedding.h"
#include "kge/model.h"

namespace openbg::kge {

/// TransE (Bordes et al. 2013): score = -||h + r - t||_1, margin ranking
/// loss, entity embeddings projected to the unit ball after each step.
class TransE : public KgeModel {
 public:
  TransE(size_t num_entities, size_t num_relations, size_t dim,
         float margin, util::Rng* rng);

  std::string name() const override { return "TransE"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void VisitParams(const ParamVisitor& fn) override;
  bool GetTailScanSpec(TailScanSpec* spec) const override;
  void TailScanQuery(uint32_t h, uint32_t r,
                     std::vector<float>* q) const override;

  EmbeddingTable& entities() { return ent_; }
  EmbeddingTable& relations() { return rel_; }

 private:
  // Emits the +/- L1 subgradient of one triple's distance through the sink.
  void EmitGrad(const LpTriple& t, float direction, float lr,
                GradSink* sink);

  size_t dim_;
  float margin_;
  EmbeddingTable ent_, rel_;
};

/// TransH (Wang et al. 2014): relation-specific hyperplanes. Entities are
/// projected onto the hyperplane with unit normal w_r before translation by
/// d_r: score = -||(h - (w·h)w) + d - (t - (w·t)w)||_1.
class TransH : public KgeModel {
 public:
  TransH(size_t num_entities, size_t num_relations, size_t dim,
         float margin, util::Rng* rng);

  std::string name() const override { return "TransH"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void VisitParams(const ParamVisitor& fn) override;

 private:
  // Emits the gradient and records r in *touched for the end-of-batch
  // normal re-normalization (formerly PostStep state, now batch-local so
  // concurrent TrainBatch calls never share a container).
  void EmitGrad(const LpTriple& t, float direction, float lr, GradSink* sink,
                std::vector<uint32_t>* touched);

  size_t dim_;
  float margin_;
  EmbeddingTable ent_, d_, w_;
};

/// TransD (Ji et al. 2015): dynamic mapping via entity- and relation-
/// projection vectors: h_perp = h + (h_p . h) r_p.
class TransD : public KgeModel {
 public:
  TransD(size_t num_entities, size_t num_relations, size_t dim,
         float margin, util::Rng* rng);

  std::string name() const override { return "TransD"; }
  float ScoreTriple(uint32_t h, uint32_t r, uint32_t t) const override;
  void ScoreTails(uint32_t h, uint32_t r,
                  std::vector<float>* out) const override;
  void ScoreHeads(uint32_t r, uint32_t t,
                  std::vector<float>* out) const override;
  double TrainPairs(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr) override;
  TrainCaps train_caps() const override { return {true, true}; }
  double TrainBatch(const std::vector<LpTriple>& pos,
                    const std::vector<LpTriple>& neg, float lr,
                    GradSink* sink) override;
  void VisitParams(const ParamVisitor& fn) override;

 private:
  void Project(uint32_t e, uint32_t r, float* out) const;
  void EmitGrad(const LpTriple& t, float direction, float lr,
                GradSink* sink);

  size_t dim_;
  float margin_;
  EmbeddingTable ent_, ent_p_, rel_, rel_p_;
};

}  // namespace openbg::kge

#endif  // OPENBG_KGE_TRANS_MODELS_H_
