#ifndef OPENBG_KGE_TRAINER_H_
#define OPENBG_KGE_TRAINER_H_

#include <functional>

#include "kge/evaluator.h"
#include "kge/model.h"
#include "kge/negative_sampler.h"

namespace openbg::kge {

/// Epoch/batch driver for KgeModel training. One negative per positive
/// (classic setup); learning-rate and sampler strategy are configurable to
/// support the ablation benches.
struct TrainConfig {
  size_t epochs = 20;
  size_t batch_size = 256;
  float lr = 0.05f;
  NegativeSampler::Options negatives;
  uint64_t seed = 29;
  /// Optional per-epoch callback (epoch, mean loss).
  std::function<void(size_t, double)> on_epoch;
};

/// Trains `model` on `dataset.train`; returns final-epoch mean loss.
double TrainKgeModel(KgeModel* model, const Dataset& dataset,
                     const TrainConfig& config);

}  // namespace openbg::kge

#endif  // OPENBG_KGE_TRAINER_H_
