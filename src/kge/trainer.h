#ifndef OPENBG_KGE_TRAINER_H_
#define OPENBG_KGE_TRAINER_H_

#include <functional>
#include <string>

#include "kge/evaluator.h"
#include "kge/model.h"
#include "kge/negative_sampler.h"

namespace openbg::kge {

/// Epoch/batch driver for KgeModel training. One negative per positive
/// (classic setup); learning-rate and sampler strategy are configurable to
/// support the ablation benches.
struct TrainConfig {
  size_t epochs = 20;
  size_t batch_size = 256;
  float lr = 0.05f;
  NegativeSampler::Options negatives;
  uint64_t seed = 29;
  /// Optional per-epoch callback (epoch, mean loss).
  std::function<void(size_t, double)> on_epoch;

  /// When non-empty, a crash-safe checkpoint (model parameters + trainer
  /// RNG state; see kge/checkpoint.h) is written here every
  /// `checkpoint_every` epochs, and — if `resume` is set and a valid
  /// checkpoint for this model already exists — training continues from
  /// the epoch after the one the checkpoint captured, bit-identical to an
  /// uninterrupted run. A corrupt or mismatched checkpoint aborts the run
  /// with its Status rather than silently retraining from scratch.
  std::string checkpoint_path;
  size_t checkpoint_every = 1;
  bool resume = true;
};

/// Trains `model` on `dataset.train`; returns final-epoch mean loss.
double TrainKgeModel(KgeModel* model, const Dataset& dataset,
                     const TrainConfig& config);

}  // namespace openbg::kge

#endif  // OPENBG_KGE_TRAINER_H_
