#ifndef OPENBG_KGE_TRAINER_H_
#define OPENBG_KGE_TRAINER_H_

#include <functional>
#include <string>

#include "kge/evaluator.h"
#include "kge/model.h"
#include "kge/negative_sampler.h"

namespace openbg::kge {

/// How the trainer uses multiple threads (see DESIGN.md §9).
enum class TrainMode {
  /// Lock-free Hogwild: the epoch's shuffled batch list is sharded across
  /// workers that update the shared embeddings without synchronization.
  /// Fastest, but parameter values depend on thread interleaving (the
  /// benign-race policy documented in TrainCaps::hogwild_safe).
  kHogwild,
  /// Deterministic reduction: workers compute per-batch gradient op-logs
  /// from a round-start parameter snapshot; a serial fold replays them in
  /// batch order. Bit-identical results at any thread count.
  kDeterministic,
};

/// Epoch/batch driver for KgeModel training. One negative per positive
/// (classic setup); learning-rate and sampler strategy are configurable to
/// support the ablation benches.
struct TrainConfig {
  size_t epochs = 20;
  size_t batch_size = 256;
  float lr = 0.05f;
  NegativeSampler::Options negatives;
  uint64_t seed = 29;
  /// Optional per-epoch callback (epoch, mean loss).
  std::function<void(size_t, double)> on_epoch;

  /// Training threads. 1 (the default) runs the classic serial loop with
  /// its exact legacy arithmetic; 0 means hardware concurrency. With more
  /// than one thread, `mode` picks the parallel strategy — and a model
  /// whose TrainCaps cannot support that strategy falls back to the serial
  /// loop (with a logged warning) rather than computing wrong answers.
  size_t num_threads = 1;
  TrainMode mode = TrainMode::kHogwild;
  /// Deterministic mode processes batches in parallel rounds of this many;
  /// each round's gradients are computed from the round-start parameters
  /// and folded serially in batch order. Larger rounds expose more
  /// parallelism but make the staleness window (and op-log memory) bigger.
  size_t round_batches = 8;

  /// When non-empty, a crash-safe checkpoint (model parameters + trainer
  /// RNG state; see kge/checkpoint.h) is written here every
  /// `checkpoint_every` epochs, and — if `resume` is set and a valid
  /// checkpoint for this model already exists — training continues from
  /// the epoch after the one the checkpoint captured, bit-identical to an
  /// uninterrupted run. A corrupt or mismatched checkpoint aborts the run
  /// with its Status rather than silently retraining from scratch.
  std::string checkpoint_path;
  size_t checkpoint_every = 1;
  bool resume = true;
};

/// Trains `model` on `dataset.train`; returns final-epoch mean loss.
double TrainKgeModel(KgeModel* model, const Dataset& dataset,
                     const TrainConfig& config);

}  // namespace openbg::kge

#endif  // OPENBG_KGE_TRAINER_H_
