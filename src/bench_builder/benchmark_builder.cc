#include "bench_builder/benchmark_builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace openbg::bench_builder {

using ontology::CoreKind;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

BenchmarkBuilder::BenchmarkBuilder(
    const rdf::Graph* graph, const ontology::Ontology* ontology,
    const datagen::World* world,
    const construction::AssemblyResult* assembly)
    : graph_(graph), ontology_(ontology), world_(world),
      assembly_(assembly) {
  OPENBG_CHECK(graph && ontology && world && assembly);
}

Dataset BenchmarkBuilder::Build(const BenchmarkSpec& spec,
                                StageReport* report) const {
  util::Rng rng(spec.seed);
  const auto& store = graph_->store;
  StageReport local_report;
  StageReport* rep = report != nullptr ? report : &local_report;

  // Map product TermId -> world index (for image lookup / labels).
  std::unordered_map<TermId, size_t> product_index;
  for (size_t i = 0; i < assembly_->product_terms.size(); ++i) {
    product_index.emplace(assembly_->product_terms[i], i);
  }
  auto head_has_image = [&](TermId h) {
    auto it = product_index.find(h);
    return it != product_index.end() &&
           !world_->products[it->second].image.empty();
  };

  // ---- Stage 1: relation refinement. Candidates are the business
  // relations: core object properties + product attribute properties.
  std::vector<TermId> candidates;
  for (const auto& op : ontology_->object_properties()) {
    candidates.push_back(op.property);
  }
  for (TermId p : ontology_->attribute_properties()) candidates.push_back(p);
  rep->relations_before = candidates.size();

  std::vector<std::pair<TermId, size_t>> rel_counts;
  for (TermId r : candidates) {
    size_t n = 0;
    store.ForEachMatchFn(
        TriplePattern{TriplePattern::kAny, r, TriplePattern::kAny},
        [&](const Triple& t) {
          // Only instance assertions: heads must be products. (Domain/range
          // schema triples have class subjects and never match since
          // products are the only subjects of these relations, but the
          // image filter needs product heads anyway.)
          if (product_index.count(t.s) == 0) return true;
          if (spec.require_image && !head_has_image(t.s)) return true;
          ++n;
          return true;
        });
    if (n > 0) rel_counts.emplace_back(r, n);
  }
  std::sort(rel_counts.begin(), rel_counts.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (rel_counts.size() > spec.num_relations) {
    rel_counts.resize(spec.num_relations);
  }
  rep->relations_after = rel_counts.size();

  std::unordered_set<TermId> head_relations, all_relations;
  for (size_t i = 0; i < rel_counts.size(); ++i) {
    all_relations.insert(rel_counts[i].first);
    if (i < rel_counts.size() / 2) head_relations.insert(rel_counts[i].first);
  }

  // ---- Stage 2: head entity filtering (Eq. 1).
  std::unordered_set<TermId> head_rel_entities, tail_rel_entities;
  for (const auto& [r, n] : rel_counts) {
    (void)n;
    store.ForEachMatchFn(
        TriplePattern{TriplePattern::kAny, r, TriplePattern::kAny},
        [&](const Triple& t) {
          if (product_index.count(t.s) == 0) return true;
          if (spec.require_image && !head_has_image(t.s)) return true;
          if (head_relations.count(r) > 0) {
            head_rel_entities.insert(t.s);
          } else {
            tail_rel_entities.insert(t.s);
          }
          return true;
        });
  }
  // Entities touched by both pools count as head-relation entities.
  for (TermId e : head_rel_entities) tail_rel_entities.erase(e);
  rep->head_relation_entities = head_rel_entities.size();
  rep->tail_relation_entities = tail_rel_entities.size();
  rep->entities_before = head_rel_entities.size() + tail_rel_entities.size();

  std::unordered_set<TermId> sampled_heads;
  for (TermId e : head_rel_entities) {
    if (rng.Bernoulli(spec.alpha_head)) sampled_heads.insert(e);
  }
  for (TermId e : tail_rel_entities) {
    if (rng.Bernoulli(spec.alpha_tail)) sampled_heads.insert(e);
  }
  rep->entities_after = sampled_heads.size();

  // ---- Stage 3: tail entity sampling (Eq. 2).
  std::vector<Triple> sampled;
  for (const auto& [r, n] : rel_counts) {
    (void)n;
    store.ForEachMatchFn(
        TriplePattern{TriplePattern::kAny, r, TriplePattern::kAny},
        [&](const Triple& t) {
          if (sampled_heads.count(t.s) == 0) return true;
          if (spec.require_image && !head_has_image(t.s)) return true;
          ++rep->candidate_triples;
          if (rng.Bernoulli(spec.alpha_triple)) sampled.push_back(t);
          return true;
        });
  }
  rep->sampled_triples = sampled.size();

  // ---- Dense ids + side channels.
  Dataset ds;
  ds.name = spec.name;
  std::unordered_map<TermId, uint32_t> entity_id;
  std::unordered_map<TermId, uint32_t> relation_id;
  auto entity_of = [&](TermId term) -> uint32_t {
    auto it = entity_id.find(term);
    if (it != entity_id.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(ds.entity_names.size());
    entity_id.emplace(term, id);
    const auto& dict = graph_->dict;
    std::string name, txt;
    std::vector<float> image;
    auto pit = product_index.find(term);
    if (pit != product_index.end()) {
      const datagen::Product& p = world_->products[pit->second];
      name = "item/" + p.id;
      txt = util::Join(p.title_tokens, " ");
      image = p.image;
    } else if (dict.IsLiteral(term)) {
      name = "val/" + dict.Text(term);
      txt = dict.Text(term);
    } else {
      // Taxonomy node: strip the namespace for readability.
      const std::string& iri = dict.Text(term);
      size_t pos = iri.rfind('/');
      std::string local =
          pos == std::string::npos ? iri : iri.substr(pos + 1);
      size_t pos2 = iri.find(rdf::iri::kOpenBgNs);
      name = pos2 == 0 ? iri.substr(rdf::iri::kOpenBgNs.size()) : iri;
      txt = local;
    }
    ds.entity_names.push_back(std::move(name));
    ds.entity_text.push_back(std::move(txt));
    ds.entity_images.push_back(std::move(image));
    return id;
  };
  auto relation_of = [&](TermId term) -> uint32_t {
    auto it = relation_id.find(term);
    if (it != relation_id.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(ds.relation_names.size());
    relation_id.emplace(term, id);
    const std::string& iri = graph_->dict.Text(term);
    size_t pos = iri.rfind('/');
    ds.relation_names.push_back(
        pos == std::string::npos ? iri : iri.substr(pos + 1));
    return id;
  };

  std::vector<LpTriple> triples;
  triples.reserve(sampled.size());
  for (const Triple& t : sampled) {
    triples.push_back({entity_of(t.s), relation_of(t.p), entity_of(t.o)});
  }
  rng.Shuffle(&triples);

  // ---- Splits: dev/test triples must leave every touched entity and
  // relation with at least one remaining train occurrence.
  std::vector<size_t> ent_count(ds.num_entities(), 0);
  std::vector<size_t> rel_count2(ds.num_relations(), 0);
  for (const LpTriple& t : triples) {
    ent_count[t.h] += 1;
    ent_count[t.t] += 1;
    rel_count2[t.r] += 1;
  }
  size_t want_eval = std::min(spec.dev_size + spec.test_size,
                              triples.size() / 3);
  std::vector<LpTriple> eval;
  for (const LpTriple& t : triples) {
    if (eval.size() < want_eval && ent_count[t.h] > 1 &&
        ent_count[t.t] > 1 && rel_count2[t.r] > 1) {
      eval.push_back(t);
      ent_count[t.h] -= 1;
      ent_count[t.t] -= 1;
      rel_count2[t.r] -= 1;
    } else {
      ds.train.push_back(t);
    }
  }
  size_t dev_n = std::min(spec.dev_size, eval.size() / 2);
  ds.dev.assign(eval.begin(), eval.begin() + dev_n);
  ds.test.assign(eval.begin() + dev_n, eval.end());
  rep->final_train = ds.train.size();
  rep->final_dev = ds.dev.size();
  rep->final_test = ds.test.size();
  return ds;
}

}  // namespace openbg::bench_builder
