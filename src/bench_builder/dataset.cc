#include "bench_builder/dataset.h"

#include <algorithm>

#include "util/tsv.h"

namespace openbg::bench_builder {

size_t Dataset::num_multimodal_entities() const {
  size_t n = 0;
  for (const auto& img : entity_images) {
    if (!img.empty()) ++n;
  }
  return n;
}

util::Status Dataset::WriteTo(const std::string& dir) const {
  auto write_split = [this, &dir](const char* split,
                                  const std::vector<LpTriple>& triples) {
    util::TsvWriter w(dir + "/" + name + "_" + split + ".tsv");
    for (const LpTriple& t : triples) {
      w.WriteRow({entity_names[t.h], relation_names[t.r], entity_names[t.t]});
    }
    return w.Close();
  };
  OPENBG_RETURN_NOT_OK(write_split("train", train));
  OPENBG_RETURN_NOT_OK(write_split("dev", dev));
  OPENBG_RETURN_NOT_OK(write_split("test", test));
  util::TsvWriter ew(dir + "/" + name + "_entities.tsv");
  for (size_t i = 0; i < entity_names.size(); ++i) {
    ew.WriteRow({entity_names[i], entity_text[i]});
  }
  OPENBG_RETURN_NOT_OK(ew.Close());
  util::TsvWriter rw(dir + "/" + name + "_relations.tsv");
  for (const std::string& r : relation_names) rw.WriteRow({r});
  return rw.Close();
}

std::vector<std::pair<std::string, size_t>> RelationDistribution(
    const Dataset& ds) {
  std::vector<size_t> counts(ds.num_relations(), 0);
  for (const auto* split : {&ds.train, &ds.dev, &ds.test}) {
    for (const LpTriple& t : *split) counts[t.r] += 1;
  }
  std::vector<std::pair<std::string, size_t>> out;
  for (size_t r = 0; r < counts.size(); ++r) {
    out.emplace_back(ds.relation_names[r], counts[r]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace openbg::bench_builder
