#ifndef OPENBG_BENCH_BUILDER_BENCHMARK_BUILDER_H_
#define OPENBG_BENCH_BUILDER_BENCHMARK_BUILDER_H_

#include <string>
#include <vector>

#include "bench_builder/dataset.h"
#include "construction/kg_assembler.h"
#include "datagen/world.h"
#include "ontology/ontology.h"
#include "rdf/graph.h"

namespace openbg::bench_builder {

/// Parameters of one benchmark extraction — the knobs of Sec. III-A.
/// Defaults are the OpenBG500-shaped setting.
struct BenchmarkSpec {
  std::string name = "openbg500";
  uint64_t seed = 17;

  /// Stage 1 (relation refinement): keep the `num_relations` most frequent
  /// business relations (object properties + product attributes; meta and
  /// label properties never qualify).
  size_t num_relations = 40;

  /// Restrict to triples whose head entity carries an image (the
  /// OpenBG-IMG condition); relations with no surviving triples drop out,
  /// which is why the paper's IMG split has 136 < 500 relations.
  bool require_image = false;

  /// Stage 2 (head entity filtering): relations split into head (more
  /// frequent) vs tail halves; entities reached by head-relations sample at
  /// alpha_h, the rest at alpha_l (Eq. 1, alpha_h > alpha_l).
  double alpha_head = 0.9;
  double alpha_tail = 0.5;

  /// Stage 3 (tail entity sampling): surviving triples sample at this rate
  /// (Eq. 2).
  double alpha_triple = 0.9;

  /// Split sizes; dev/test triples are drawn only from (h, r) whose head
  /// and relation also occur in train, so filtered evaluation is well posed.
  size_t dev_size = 500;
  size_t test_size = 500;
};

/// Stage-by-stage counts, printed by the Fig. 4 bench.
struct StageReport {
  size_t relations_before = 0;
  size_t relations_after = 0;
  size_t entities_before = 0;
  size_t head_relation_entities = 0;
  size_t tail_relation_entities = 0;
  size_t entities_after = 0;
  size_t candidate_triples = 0;
  size_t sampled_triples = 0;
  size_t final_train = 0, final_dev = 0, final_test = 0;
};

/// The three-stage sampler that turns the full KG into a released
/// benchmark. Head entities are products; tails may be taxonomy nodes or
/// attribute-value literals (matching the real OpenBG500, where tails are
/// mostly value strings).
class BenchmarkBuilder {
 public:
  BenchmarkBuilder(const rdf::Graph* graph,
                   const ontology::Ontology* ontology,
                   const datagen::World* world,
                   const construction::AssemblyResult* assembly);

  /// Runs the pipeline for one spec.
  Dataset Build(const BenchmarkSpec& spec, StageReport* report = nullptr)
      const;

 private:
  const rdf::Graph* graph_;
  const ontology::Ontology* ontology_;
  const datagen::World* world_;
  const construction::AssemblyResult* assembly_;
};

}  // namespace openbg::bench_builder

#endif  // OPENBG_BENCH_BUILDER_BENCHMARK_BUILDER_H_
