#ifndef OPENBG_BENCH_BUILDER_DATASET_H_
#define OPENBG_BENCH_BUILDER_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace openbg::bench_builder {

/// One link-prediction triple over dense dataset-local ids.
struct LpTriple {
  uint32_t h = 0;
  uint32_t r = 0;
  uint32_t t = 0;

  friend bool operator==(const LpTriple&, const LpTriple&) = default;
};

/// A released benchmark (OpenBG-IMG / OpenBG500 / OpenBG500-L analogue):
/// dense entity/relation id spaces, train/dev/test splits, and the side
/// channels the baselines consume — per-entity text (for KG-BERT-style
/// models) and per-entity image features (for the multimodal models; empty
/// vector = entity has no image, matching the paper's note that only
/// 14,718 of OpenBG-IMG's 27,910 entities are multimodal).
struct Dataset {
  std::string name;
  std::vector<std::string> entity_names;
  std::vector<std::string> relation_names;
  std::vector<std::string> entity_text;
  std::vector<std::vector<float>> entity_images;

  std::vector<LpTriple> train, dev, test;

  size_t num_entities() const { return entity_names.size(); }
  size_t num_relations() const { return relation_names.size(); }
  size_t num_multimodal_entities() const;

  /// Writes train/dev/test TSVs plus entity/relation vocab files under
  /// `dir` (created by the caller), mirroring the released file layout.
  util::Status WriteTo(const std::string& dir) const;
};

/// Counts triples per relation, descending — the Fig. 5 series.
std::vector<std::pair<std::string, size_t>> RelationDistribution(
    const Dataset& ds);

}  // namespace openbg::bench_builder

#endif  // OPENBG_BENCH_BUILDER_DATASET_H_
