#include <gtest/gtest.h>

#include <cmath>

#include "crf/crf.h"
#include "util/rng.h"

namespace openbg::crf {
namespace {

// A toy tagging world: tokens are feature ids; label of token f is
// 1 if f < 5, else 0, with a mild sequential dependency (label 1 never
// follows label 1). Checks that the CRF learns both emissions and
// transitions.
std::vector<Sequence> MakeToyData(size_t n, util::Rng* rng) {
  std::vector<Sequence> data;
  for (size_t i = 0; i < n; ++i) {
    Sequence seq;
    size_t len = 4 + rng->Uniform(5);
    uint32_t prev = 0;
    for (size_t t = 0; t < len; ++t) {
      TokenFeatures tok;
      bool want_one = rng->Bernoulli(0.4) && prev == 0;
      uint32_t f = want_one ? static_cast<uint32_t>(rng->Uniform(5))
                            : static_cast<uint32_t>(5 + rng->Uniform(5));
      tok.features = {f, 10 + f % 3};
      tok.label = want_one ? 1u : 0u;
      prev = tok.label;
      seq.push_back(tok);
    }
    data.push_back(seq);
  }
  return data;
}

TEST(CrfTest, UntrainedLikelihoodIsUniform) {
  LinearChainCrf crf(2, 64);
  Sequence seq(3);
  for (auto& t : seq) t.features = {1};
  // All weights zero: P(y) = 1 / 2^3.
  EXPECT_NEAR(crf.LogLikelihood(seq), -3.0 * std::log(2.0), 1e-9);
}

TEST(CrfTest, TrainingImprovesLikelihood) {
  util::Rng rng(31);
  std::vector<Sequence> data = MakeToyData(100, &rng);
  LinearChainCrf crf(2, 64);
  double before = 0.0;
  for (const Sequence& s : data) before += crf.LogLikelihood(s);
  crf.Train(data, /*epochs=*/5, /*batch_size=*/8, /*lr=*/0.3, /*l2=*/0.0,
            &rng);
  double after = 0.0;
  for (const Sequence& s : data) after += crf.LogLikelihood(s);
  EXPECT_GT(after, before);
}

TEST(CrfTest, DecodeLearnsPattern) {
  util::Rng rng(37);
  std::vector<Sequence> train = MakeToyData(300, &rng);
  std::vector<Sequence> test = MakeToyData(50, &rng);
  LinearChainCrf crf(2, 64);
  crf.Train(train, 8, 8, 0.3, 1e-6, &rng);
  size_t correct = 0, total = 0;
  for (const Sequence& s : test) {
    std::vector<uint32_t> pred = crf.Decode(s);
    for (size_t t = 0; t < s.size(); ++t) {
      correct += (pred[t] == s[t].label);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(CrfTest, TransitionsLearned) {
  // Emissions are ambiguous (same feature everywhere); labels strictly
  // alternate 0,1,0,1... so only transitions can explain the data.
  std::vector<Sequence> data;
  for (int i = 0; i < 60; ++i) {
    Sequence seq(6);
    for (size_t t = 0; t < 6; ++t) {
      seq[t].features = {1};
      seq[t].label = t % 2;
    }
    data.push_back(seq);
  }
  util::Rng rng(41);
  LinearChainCrf crf(2, 8);
  crf.Train(data, 10, 4, 0.5, 0.0, &rng);
  std::vector<uint32_t> pred = crf.Decode(data[0]);
  EXPECT_EQ(pred, (std::vector<uint32_t>{0, 1, 0, 1, 0, 1}));
}

TEST(CrfTest, DecodeWithExternalEmissions) {
  LinearChainCrf crf(3, 4);
  std::vector<std::vector<float>> emissions = {
      {0.0f, 5.0f, 0.0f}, {0.0f, 0.0f, 5.0f}, {5.0f, 0.0f, 0.0f}};
  EXPECT_EQ(crf.DecodeWithEmissions(emissions),
            (std::vector<uint32_t>{1, 2, 0}));
}

TEST(BioTest, LabelHelpers) {
  EXPECT_EQ(BioB(0), 1u);
  EXPECT_EQ(BioI(0), 2u);
  EXPECT_EQ(BioB(3), 7u);
  EXPECT_TRUE(IsBioB(1));
  EXPECT_TRUE(IsBioI(2));
  EXPECT_FALSE(IsBioB(0));
  EXPECT_FALSE(IsBioI(0));
  EXPECT_EQ(BioType(7), 3u);
  EXPECT_EQ(BioType(8), 3u);
}

TEST(SpanEvalTest, PerfectMatch) {
  std::vector<std::vector<uint32_t>> gold = {{0, 1, 2, 0, 3}};
  SpanPrf prf = EvaluateSpans(gold, gold);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
  EXPECT_EQ(prf.gold_spans, 2u);
}

TEST(SpanEvalTest, PartialMatch) {
  // Gold: span(1..3, type0), span(4..5, type1).
  std::vector<std::vector<uint32_t>> gold = {{1, 2, 0, 3, 0}};
  // Pred: first span correct, second missed, one spurious span.
  std::vector<std::vector<uint32_t>> pred = {{1, 2, 0, 0, 1}};
  SpanPrf prf = EvaluateSpans(gold, pred);
  EXPECT_EQ(prf.correct, 1u);
  EXPECT_EQ(prf.pred_spans, 2u);
  EXPECT_EQ(prf.gold_spans, 2u);
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);
  EXPECT_DOUBLE_EQ(prf.recall, 0.5);
}

TEST(SpanEvalTest, BoundaryErrorNotCredited) {
  // Gold span covers tokens 0-1; prediction covers only token 0.
  std::vector<std::vector<uint32_t>> gold = {{1, 2, 0}};
  std::vector<std::vector<uint32_t>> pred = {{1, 0, 0}};
  SpanPrf prf = EvaluateSpans(gold, pred);
  EXPECT_EQ(prf.correct, 0u);
}

TEST(SpanEvalTest, TypeMismatchNotCredited) {
  std::vector<std::vector<uint32_t>> gold = {{1, 0}};   // type 0
  std::vector<std::vector<uint32_t>> pred = {{3, 0}};   // type 1
  SpanPrf prf = EvaluateSpans(gold, pred);
  EXPECT_EQ(prf.correct, 0u);
}

// Property: mean TrainStep NLL decreases over repeated steps on a fixed
// batch, across seeds.
class CrfConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrfConvergenceTest, NllDecreasesOnFixedBatch) {
  util::Rng rng(GetParam());
  std::vector<Sequence> data = MakeToyData(20, &rng);
  std::vector<const Sequence*> batch;
  for (const Sequence& s : data) batch.push_back(&s);
  LinearChainCrf crf(2, 64);
  double first = crf.TrainStep(batch, 0.2, 0.0);
  double last = first;
  for (int i = 0; i < 20; ++i) last = crf.TrainStep(batch, 0.2, 0.0);
  EXPECT_LT(last, first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrfConvergenceTest,
                         ::testing::Values(3, 7, 11, 19));

}  // namespace
}  // namespace openbg::crf
