// Crash-safety suite: CRC32, atomic writes under injected faults, and the
// KG snapshot / trainer checkpoint formats under systematic corruption
// (truncation at every byte boundary, a flip of every single bit). The
// invariant throughout: a damaged file never loads — no crash, no silent
// partial state — and a failed write never clobbers the previous file.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "kge/checkpoint.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "rdf/snapshot.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/snapshot.h"
#include "util/string_util.h"

namespace openbg {
namespace {

using bench_builder::Dataset;

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ------------------------------------------------------------------ CRC32

TEST(Crc32Test, KnownVectors) {
  // The standard IEEE check value for "123456789".
  EXPECT_EQ(util::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("", 0), 0u);
}

TEST(Crc32Test, AnySingleBitFlipChangesChecksum) {
  std::string data = "openbg crc32 probe";
  uint32_t base = util::Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      std::string corrupt = data;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << b));
      EXPECT_NE(util::Crc32(corrupt.data(), corrupt.size()), base)
          << "byte " << i << " bit " << b;
    }
  }
}

TEST(Crc32Test, SeedChains) {
  std::string data = "split into two parts";
  uint32_t whole = util::Crc32(data.data(), data.size());
  uint32_t part = util::Crc32(data.data(), 8);
  part = util::Crc32(data.data() + 8, data.size() - 8, part);
  EXPECT_EQ(part, whole);
}

// ------------------------------------------------------- fault primitives

TEST(FaultInjectionTest, FailpointLifecycle) {
  util::failpoints::DisarmAll();
  EXPECT_FALSE(util::failpoints::Triggered("snapshot_test::site"));
  util::failpoints::Arm("snapshot_test::site");
  EXPECT_TRUE(util::failpoints::Triggered("snapshot_test::site"));
  EXPECT_TRUE(util::failpoints::Triggered("snapshot_test::site"));
  util::failpoints::Disarm("snapshot_test::site");
  EXPECT_FALSE(util::failpoints::Triggered("snapshot_test::site"));
}

TEST(FaultInjectionTest, FailpointSucceedFirstN) {
  util::failpoints::DisarmAll();
  util::failpoints::Arm("snapshot_test::later", /*succeed_first=*/2);
  EXPECT_FALSE(util::failpoints::Triggered("snapshot_test::later"));
  EXPECT_FALSE(util::failpoints::Triggered("snapshot_test::later"));
  EXPECT_TRUE(util::failpoints::Triggered("snapshot_test::later"));
  util::failpoints::DisarmAll();
}

TEST(FaultInjectionTest, TruncateAndFlipBit) {
  std::string path = ::testing::TempDir() + "/openbg_fault_prims";
  WriteWholeFile(path, "abcdef");
  ASSERT_TRUE(util::TruncateFile(path, 3).ok());
  EXPECT_EQ(ReadWholeFile(path), "abc");
  ASSERT_TRUE(util::FlipBit(path, 0, 1).ok());
  EXPECT_EQ(ReadWholeFile(path), "cbc");  // 'a' ^ 0x02 = 'c'
  EXPECT_FALSE(util::FlipBit(path, 99, 0).ok());
  EXPECT_FALSE(util::FlipBit(path, 0, 8).ok());
  auto size = util::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 3u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ AtomicFile

TEST(AtomicFileTest, WritesAndReplaces) {
  std::string path = ::testing::TempDir() + "/openbg_atomic_basic";
  ASSERT_TRUE(util::WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadWholeFile(path), "first");
  ASSERT_TRUE(util::WriteFileAtomic(path, "second, longer").ok());
  EXPECT_EQ(ReadWholeFile(path), "second, longer");
  EXPECT_FALSE(util::FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

class AtomicFileFaultTest : public ::testing::TestWithParam<const char*> {};

// Whichever syscall fails — write, fsync, or rename — the previous file
// content survives and no temp file is left behind.
TEST_P(AtomicFileFaultTest, FailureLeavesTargetUntouched) {
  std::string path = ::testing::TempDir() + "/openbg_atomic_fault";
  ASSERT_TRUE(util::WriteFileAtomic(path, "precious").ok());

  util::failpoints::Arm(GetParam());
  util::Status st = util::WriteFileAtomic(path, "doomed replacement");
  util::failpoints::DisarmAll();

  EXPECT_FALSE(st.ok()) << GetParam();
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
  EXPECT_EQ(ReadWholeFile(path), "precious") << GetParam();
  EXPECT_FALSE(util::FileExists(path + ".tmp")) << GetParam();
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSites, AtomicFileFaultTest,
                         ::testing::Values("atomic_file::write",
                                           "atomic_file::fsync",
                                           "atomic_file::rename"));

TEST(AtomicFileTest, AbandonedWriterRemovesTemp) {
  std::string path = ::testing::TempDir() + "/openbg_atomic_abandon";
  {
    util::AtomicFile file(path);
    ASSERT_TRUE(file.status().ok());
    ASSERT_TRUE(file.Append("half-written").ok());
    // No Commit: destructor must clean up.
  }
  EXPECT_FALSE(util::FileExists(path));
  EXPECT_FALSE(util::FileExists(path + ".tmp"));
}

TEST(AtomicFileTest, RemoveStaleTempsReclaimsCrashOrphans) {
  std::string dir = ::testing::TempDir() + "/openbg_stale_temps";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;

  // A failed commit (injected rename fault) cleans up after itself: the
  // regression RemoveStaleTemps guards is ONLY the hard-crash case, where
  // the process dies between write and rename and no destructor runs.
  util::failpoints::Arm("atomic_file::rename");
  EXPECT_FALSE(util::WriteFileAtomic(dir + "/delta.obgd", "doomed").ok());
  util::failpoints::DisarmAll();
  EXPECT_FALSE(util::FileExists(dir + "/delta.obgd.tmp"));

  // Simulate that hard crash: orphaned temp files no writer owns, next to
  // a real target file and a non-temp bystander.
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/delta.obgd", "live data").ok());
  WriteWholeFile(dir + "/delta.obgd.tmp", "torn write");
  WriteWholeFile(dir + "/other.tmp", "another orphan");
  WriteWholeFile(dir + "/notes.txt", "not a temp");

  EXPECT_EQ(util::RemoveStaleTemps(dir), 2u);
  EXPECT_FALSE(util::FileExists(dir + "/delta.obgd.tmp"));
  EXPECT_FALSE(util::FileExists(dir + "/other.tmp"));
  EXPECT_EQ(ReadWholeFile(dir + "/delta.obgd"), "live data");
  EXPECT_EQ(ReadWholeFile(dir + "/notes.txt"), "not a temp");

  // Idempotent, and a missing directory is a no-op, not an error.
  EXPECT_EQ(util::RemoveStaleTemps(dir), 0u);
  EXPECT_EQ(util::RemoveStaleTemps(dir + "/does_not_exist"), 0u);

  std::remove((dir + "/delta.obgd").c_str());
  std::remove((dir + "/notes.txt").c_str());
  ::rmdir(dir.c_str());
}

// ------------------------------------------------------------ KG snapshot

void MakeSmallGraph(rdf::TermDict* dict, rdf::TripleStore* store) {
  rdf::TermId s = dict->AddIri("http://openbg.example/s");
  rdf::TermId p = dict->AddIri("http://openbg.example/p");
  rdf::TermId o = dict->AddIri("http://openbg.example/o");
  rdf::TermId lit = dict->AddLiteral("литерал with \"quotes\"\n");
  store->Add(s, p, o);
  store->Add(s, p, lit);
  store->Add(o, p, lit);
}

TEST(KgSnapshotTest, RoundTrip) {
  rdf::TermDict dict;
  rdf::TripleStore store;
  MakeSmallGraph(&dict, &store);
  std::string path = ::testing::TempDir() + "/openbg_snapshot_rt.snap";
  ASSERT_TRUE(rdf::SaveSnapshot(dict, store, path).ok());

  rdf::TermDict dict2;
  rdf::TripleStore store2;
  ASSERT_TRUE(rdf::LoadSnapshot(path, &dict2, &store2).ok());
  ASSERT_EQ(dict2.size(), dict.size());
  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(dict2.Text(id), dict.Text(id));
    EXPECT_EQ(dict2.Kind(id), dict.Kind(id));
  }
  ASSERT_EQ(store2.size(), store.size());
  for (const rdf::Triple& t : store.triples()) {
    EXPECT_TRUE(store2.Contains(t.s, t.p, t.o));
  }
  std::remove(path.c_str());
}

TEST(KgSnapshotTest, RejectsWrongMagic) {
  std::string path = ::testing::TempDir() + "/openbg_snapshot_magic.snap";
  ASSERT_TRUE(util::WriteFileAtomic(path, "NOTASNAP0123456789").ok());
  rdf::TermDict dict;
  rdf::TripleStore store;
  util::Status st = rdf::LoadSnapshot(path, &dict, &store);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// The acceptance property: truncation at EVERY byte boundary fails closed.
TEST(KgSnapshotTest, TruncationAtEveryByteFailsClosed) {
  rdf::TermDict dict;
  rdf::TripleStore store;
  MakeSmallGraph(&dict, &store);
  std::string path = ::testing::TempDir() + "/openbg_snapshot_trunc.snap";
  ASSERT_TRUE(rdf::SaveSnapshot(dict, store, path).ok());
  const std::string blob = ReadWholeFile(path);
  ASSERT_GT(blob.size(), 16u);

  for (size_t len = 0; len < blob.size(); ++len) {
    WriteWholeFile(path, blob.substr(0, len));
    rdf::TermDict d;
    rdf::TripleStore s;
    util::Status st = rdf::LoadSnapshot(path, &d, &s);
    EXPECT_FALSE(st.ok()) << "truncation to " << len << " bytes loaded";
    EXPECT_EQ(d.size(), 0u) << "partial state leaked at len " << len;
    EXPECT_EQ(s.size(), 0u) << "partial state leaked at len " << len;
  }
  std::remove(path.c_str());
}

// ...and so does a flip of any single bit anywhere in the file.
TEST(KgSnapshotTest, EverySingleBitFlipFailsClosed) {
  rdf::TermDict dict;
  rdf::TripleStore store;
  MakeSmallGraph(&dict, &store);
  std::string path = ::testing::TempDir() + "/openbg_snapshot_flip.snap";
  ASSERT_TRUE(rdf::SaveSnapshot(dict, store, path).ok());
  const std::string blob = ReadWholeFile(path);

  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      WriteWholeFile(path, blob);
      ASSERT_TRUE(util::FlipBit(path, byte, bit).ok());
      rdf::TermDict d;
      rdf::TripleStore s;
      util::Status st = rdf::LoadSnapshot(path, &d, &s);
      EXPECT_FALSE(st.ok())
          << "flip of byte " << byte << " bit " << bit << " loaded";
    }
  }
  std::remove(path.c_str());
}

TEST(KgSnapshotTest, SaveFailureKeepsPreviousSnapshot) {
  rdf::TermDict dict;
  rdf::TripleStore store;
  MakeSmallGraph(&dict, &store);
  std::string path = ::testing::TempDir() + "/openbg_snapshot_keep.snap";
  ASSERT_TRUE(rdf::SaveSnapshot(dict, store, path).ok());

  util::failpoints::Arm("atomic_file::rename");
  rdf::TermDict dict2;
  dict2.AddIri("http://openbg.example/other");
  rdf::TripleStore store2;
  EXPECT_FALSE(rdf::SaveSnapshot(dict2, store2, path).ok());
  util::failpoints::DisarmAll();

  rdf::TermDict loaded_dict;
  rdf::TripleStore loaded_store;
  ASSERT_TRUE(rdf::LoadSnapshot(path, &loaded_dict, &loaded_store).ok());
  EXPECT_EQ(loaded_dict.size(), dict.size());
  EXPECT_EQ(loaded_store.size(), store.size());
  std::remove(path.c_str());
}

// ------------------------------------------------------ trainer checkpoint

Dataset MakeCheckpointDataset(size_t n = 40) {
  Dataset ds;
  ds.name = "ckpt";
  for (size_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e" + std::to_string(i));
    ds.entity_text.push_back("t" + std::to_string(i));
    ds.entity_images.push_back({});
  }
  for (uint32_t r = 0; r < 3; ++r) {
    ds.relation_names.push_back("rel" + std::to_string(r));
  }
  for (uint32_t h = 0; h < n; ++h) {
    for (uint32_t r = 0; r < 3; ++r) {
      ds.train.push_back({h, r, static_cast<uint32_t>((h + 7 * (r + 1)) % n)});
    }
  }
  for (size_t i = 0; i < 10; ++i) ds.dev.push_back(ds.train[i * 3]);
  ds.test = ds.dev;
  return ds;
}

std::vector<std::vector<float>> SnapshotParams(kge::KgeModel* model) {
  std::vector<std::vector<float>> out;
  model->VisitParams([&out](const std::string&, nn::Matrix* m) {
    out.emplace_back(m->data(), m->data() + m->size());
  });
  return out;
}

TEST(CheckpointTest, ResumeIsBitIdenticalToUninterruptedRun) {
  Dataset ds = MakeCheckpointDataset();
  std::string path = ::testing::TempDir() + "/openbg_transe.ckpt";
  std::remove(path.c_str());

  kge::TrainConfig config;
  config.epochs = 6;
  config.batch_size = 32;
  config.lr = 0.05f;
  config.seed = 17;

  // Reference: 6 epochs straight through, no checkpointing.
  util::Rng rng_a(99);
  kge::TransE uninterrupted(ds.num_entities(), ds.num_relations(), 16, 1.0f,
                            &rng_a);
  double loss_a = TrainKgeModel(&uninterrupted, ds, config);

  // "Crashed" run: 3 epochs with checkpointing, then a fresh model resumes
  // from the checkpoint and finishes epochs 3..5.
  util::Rng rng_b(99);
  kge::TransE crashed(ds.num_entities(), ds.num_relations(), 16, 1.0f,
                      &rng_b);
  kge::TrainConfig half = config;
  half.epochs = 3;
  half.checkpoint_path = path;
  TrainKgeModel(&crashed, ds, half);
  ASSERT_TRUE(util::FileExists(path));

  util::Rng rng_c(99);
  kge::TransE resumed(ds.num_entities(), ds.num_relations(), 16, 1.0f,
                      &rng_c);
  kge::TrainConfig full = config;
  full.checkpoint_path = path;
  double loss_c = TrainKgeModel(&resumed, ds, full);

  EXPECT_EQ(loss_a, loss_c);
  std::vector<std::vector<float>> pa = SnapshotParams(&uninterrupted);
  std::vector<std::vector<float>> pc = SnapshotParams(&resumed);
  ASSERT_EQ(pa.size(), pc.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pc[i]) << "parameter block " << i << " diverged";
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, FinishedCheckpointMakesRetrainingANoOp) {
  Dataset ds = MakeCheckpointDataset();
  std::string path = ::testing::TempDir() + "/openbg_transe_done.ckpt";
  std::remove(path.c_str());

  kge::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  config.checkpoint_path = path;

  util::Rng rng(5);
  kge::TransE model(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  double loss = TrainKgeModel(&model, ds, config);

  util::Rng rng2(5);
  kge::TransE again(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng2);
  EXPECT_EQ(TrainKgeModel(&again, ds, config), loss);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsWrongModelAndWrongShape) {
  Dataset ds = MakeCheckpointDataset();
  std::string path = ::testing::TempDir() + "/openbg_mismatch.ckpt";
  util::Rng rng(3);
  kge::TransE transe(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  kge::TrainerCheckpoint ckpt;
  ckpt.model_name = transe.name();
  ckpt.next_epoch = 1;
  ASSERT_TRUE(kge::SaveCheckpoint(ckpt, &transe, path).ok());

  kge::TrainerCheckpoint loaded;
  kge::TransH transh(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  util::Status st = kge::LoadCheckpoint(path, &transh, &loaded);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);

  kge::TransE narrow(ds.num_entities(), ds.num_relations(), 8, 1.0f, &rng);
  st = kge::LoadCheckpoint(path, &narrow, &loaded);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptCheckpointFailsClosedAndKeepsModelParams) {
  Dataset ds = MakeCheckpointDataset();
  std::string path = ::testing::TempDir() + "/openbg_corrupt.ckpt";
  util::Rng rng(3);
  kge::TransE writer(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  kge::TrainerCheckpoint ckpt;
  ckpt.model_name = writer.name();
  ASSERT_TRUE(kge::SaveCheckpoint(ckpt, &writer, path).ok());

  // Corrupt one payload bit deep inside the params section.
  auto size = util::FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::FlipBit(path, size.value() - 16, 3).ok());

  kge::TransE reader(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  std::vector<std::vector<float>> before = SnapshotParams(&reader);
  kge::TrainerCheckpoint loaded;
  EXPECT_FALSE(kge::LoadCheckpoint(path, &reader, &loaded).ok());
  EXPECT_EQ(SnapshotParams(&reader), before)
      << "failed load must leave the model untouched";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace openbg
