#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace openbg::nn {
namespace {

Matrix Make(size_t r, size_t c, std::initializer_list<float> vals) {
  Matrix m(r, c);
  size_t i = 0;
  for (float v : vals) m.data()[i++] = v;
  return m;
}

TEST(MatrixTest, Basics) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5f);
  m(0, 0) = 7.0f;
  EXPECT_EQ(m.Row(0)[0], 7.0f);
  m.Zero();
  EXPECT_EQ(m(0, 0), 0.0f);
  m.Reshape(3, 2);
  EXPECT_EQ(m.rows(), 3u);
}

TEST(MatrixTest, NormAndInit) {
  util::Rng rng(5);
  Matrix m(10, 10);
  m.InitXavier(&rng);
  EXPECT_GT(m.SquaredNorm(), 0.0);
  Matrix u(100, 100);
  u.InitUniform(&rng, 0.5f);
  for (size_t i = 0; i < u.size(); ++i) {
    ASSERT_LE(std::fabs(u.data()[i]), 0.5f);
  }
}

// Reference gemm for property checking.
void NaiveGemm(const Matrix& a, bool ta, const Matrix& b, bool tb,
               float alpha, float beta, Matrix* c) {
  size_t m = ta ? a.cols() : a.rows();
  size_t k = ta ? a.rows() : a.cols();
  size_t n = tb ? b.rows() : b.cols();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        float av = ta ? a(p, i) : a(i, p);
        float bv = tb ? b(j, p) : b(p, j);
        s += av * bv;
      }
      (*c)(i, j) = alpha * s + beta * (*c)(i, j);
    }
  }
}

class GemmTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTest, MatchesNaive) {
  auto [ta, tb] = GetParam();
  util::Rng rng(11);
  size_t m = 4, k = 5, n = 3;
  Matrix a(ta ? k : m, ta ? m : k);
  Matrix b(tb ? n : k, tb ? k : n);
  a.InitUniform(&rng, 1.0f);
  b.InitUniform(&rng, 1.0f);
  Matrix c(m, n, 0.5f), ref(m, n, 0.5f);
  Gemm(a, ta, b, tb, 2.0f, 0.25f, &c);
  NaiveGemm(a, ta, b, tb, 2.0f, 0.25f, &ref);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(KernelsTest, SoftmaxRows) {
  Matrix m = Make(1, 3, {1.0f, 2.0f, 3.0f});
  SoftmaxRows(&m);
  float sum = m(0, 0) + m(0, 1) + m(0, 2);
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(m(0, 2), m(0, 1));
}

TEST(KernelsTest, ReluForwardBackward) {
  Matrix x = Make(1, 4, {-1.0f, 0.0f, 2.0f, -3.0f});
  Matrix y(1, 4);
  ReluForward(x, &y);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 2), 2.0f);
  Matrix dy(1, 4, 1.0f), dx(1, 4);
  ReluBackward(x, dy, &dx);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 2), 1.0f);
}

TEST(KernelsTest, AddRowBiasAndSumRows) {
  Matrix m(2, 2, 1.0f);
  Matrix b = Make(1, 2, {0.5f, -0.5f});
  AddRowBias(b, &m);
  EXPECT_EQ(m(0, 0), 1.5f);
  EXPECT_EQ(m(1, 1), 0.5f);
  Matrix sum(1, 2);
  SumRowsInto(m, &sum);
  EXPECT_EQ(sum(0, 0), 3.0f);
  EXPECT_EQ(sum(0, 1), 1.0f);
}

TEST(LossTest, SoftmaxCrossEntropyValue) {
  // Uniform logits over 4 classes -> loss = ln(4).
  Matrix logits(3, 4, 0.0f);
  Matrix dlogits;
  double loss = SoftmaxCrossEntropy(logits, {0, 1, 2}, &dlogits);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
  // Gradient rows sum to ~0.
  for (size_t r = 0; r < 3; ++r) {
    float s = 0.0f;
    for (size_t c = 0; c < 4; ++c) s += dlogits(r, c);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(LossTest, BinaryLogisticValue) {
  Matrix scores = Make(2, 1, {0.0f, 0.0f});
  Matrix ds;
  double loss = BinaryLogistic(scores, {1, 0}, &ds);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_LT(ds(0, 0), 0.0f);
  EXPECT_GT(ds(1, 0), 0.0f);
}

TEST(LossTest, MarginRankingHinge) {
  std::vector<float> dp, dn;
  // pos distance 1, neg distance 5, margin 1 -> inactive.
  double l = MarginRanking({1.0f}, {5.0f}, 1.0f, &dp, &dn);
  EXPECT_EQ(l, 0.0);
  EXPECT_EQ(dp[0], 0.0f);
  // pos 3, neg 1, margin 1 -> active, loss 3.
  l = MarginRanking({3.0f}, {1.0f}, 1.0f, &dp, &dn);
  EXPECT_NEAR(l, 3.0, 1e-6);
  EXPECT_GT(dp[0], 0.0f);
  EXPECT_LT(dn[0], 0.0f);
}

TEST(LossTest, PointwiseLogisticSymmetry) {
  std::vector<float> ds;
  double l = PointwiseLogistic({0.0f, 0.0f}, {1, -1}, &ds);
  EXPECT_NEAR(l, std::log(2.0), 1e-6);
  EXPECT_NEAR(ds[0], -ds[1], 1e-6f);
}

TEST(LossTest, ArgmaxRows) {
  Matrix m = Make(2, 3, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(ArgmaxRows(m), (std::vector<uint32_t>{1, 0}));
}

TEST(GradCheckTest, LinearLayerGradients) {
  util::Rng rng(21);
  Linear lin("t", 4, 3, &rng);
  Matrix x(5, 4);
  x.InitUniform(&rng, 1.0f);
  std::vector<uint32_t> labels = {0, 1, 2, 0, 1};

  auto loss_fn = [&]() {
    Matrix y, d;
    lin.Forward(x, &y);
    return SoftmaxCrossEntropy(y, labels, &d);
  };
  // Populate analytic gradients.
  Matrix y, dy;
  lin.Forward(x, &y);
  SoftmaxCrossEntropy(y, labels, &dy);
  lin.Backward(x, dy, nullptr);
  EXPECT_LT(MaxGradDiscrepancy(lin.weight(), loss_fn, 1e-2), 1e-2);
  EXPECT_LT(MaxGradDiscrepancy(lin.bias(), loss_fn, 1e-2), 1e-2);
}

TEST(GradCheckTest, MlpGradients) {
  util::Rng rng(23);
  Mlp mlp("t", {4, 6, 2}, &rng);
  Matrix x(3, 4);
  x.InitUniform(&rng, 1.0f);
  std::vector<uint32_t> labels = {0, 1, 0};
  auto loss_fn = [&]() {
    Matrix y, d;
    mlp.Forward(x, &y);
    return SoftmaxCrossEntropy(y, labels, &d);
  };
  Matrix y, dy;
  mlp.Forward(x, &y);
  SoftmaxCrossEntropy(y, labels, &dy);
  mlp.Backward(x, dy, nullptr);
  for (Parameter* p : mlp.Params()) {
    EXPECT_LT(MaxGradDiscrepancy(p, loss_fn, 1e-2), 2e-2) << p->name;
  }
}

TEST(GradCheckTest, EmbeddingBagGradients) {
  util::Rng rng(25);
  EmbeddingBag emb("t", 16, 3, &rng);
  Linear head("h", 3, 2, &rng);
  std::vector<std::vector<uint32_t>> bags = {{1, 2, 3}, {4}, {1, 7}};
  std::vector<uint32_t> labels = {0, 1, 1};
  auto loss_fn = [&]() {
    Matrix x, y, d;
    emb.Forward(bags, &x);
    head.Forward(x, &y);
    return SoftmaxCrossEntropy(y, labels, &d);
  };
  Matrix x, y, dy, dx;
  emb.Forward(bags, &x);
  head.Forward(x, &y);
  SoftmaxCrossEntropy(y, labels, &dy);
  head.Backward(x, dy, &dx);
  emb.Backward(bags, dx);
  EXPECT_LT(MaxGradDiscrepancy(emb.table(), loss_fn, 1e-2, 128), 1e-2);
}

TEST(EmbeddingBagTest, EmptyBagGivesZeroRow) {
  util::Rng rng(27);
  EmbeddingBag emb("t", 8, 4, &rng);
  Matrix out;
  emb.Forward({{}}, &out);
  for (size_t c = 0; c < 4; ++c) EXPECT_EQ(out(0, c), 0.0f);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  // Minimize ||w - 3||^2 elementwise.
  Parameter w("w", 1, 4);
  w.value.Fill(0.0f);
  SgdOptimizer opt({&w}, 0.1f);
  for (int step = 0; step < 200; ++step) {
    for (size_t i = 0; i < 4; ++i) {
      w.grad.data()[i] = 2.0f * (w.value.data()[i] - 3.0f);
    }
    opt.Step();
  }
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(w.value.data()[i], 3.0f, 1e-3);
}

TEST(OptimizerTest, AdaGradConverges) {
  Parameter w("w", 1, 2);
  w.value.Fill(-2.0f);
  AdaGradOptimizer opt({&w}, 0.5f);
  for (int step = 0; step < 500; ++step) {
    for (size_t i = 0; i < 2; ++i) {
      w.grad.data()[i] = 2.0f * (w.value.data()[i] - 1.0f);
    }
    opt.Step();
  }
  for (size_t i = 0; i < 2; ++i) EXPECT_NEAR(w.value.data()[i], 1.0f, 1e-2);
}

TEST(OptimizerTest, AdamWConvergesAndDecays) {
  Parameter w("w", 1, 2);
  w.value.Fill(5.0f);
  AdamWOptimizer opt({&w}, 0.05f, 0.9f, 0.999f, 1e-8f, 0.0f);
  for (int step = 0; step < 2000; ++step) {
    for (size_t i = 0; i < 2; ++i) {
      w.grad.data()[i] = 2.0f * (w.value.data()[i] + 1.0f);
    }
    opt.Step();
  }
  for (size_t i = 0; i < 2; ++i) EXPECT_NEAR(w.value.data()[i], -1.0f, 0.05);
}

TEST(ScheduleTest, WarmupThenDecay) {
  LinearWarmupSchedule sched(1.0f, 100, 0.1f);
  EXPECT_LT(sched.LrAt(0), 0.2f);
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-6f);
  EXPECT_GT(sched.LrAt(10), sched.LrAt(50));
  EXPECT_GT(sched.LrAt(50), sched.LrAt(99));
  EXPECT_EQ(sched.LrAt(100), 0.0f);
}

}  // namespace
}  // namespace openbg::nn
