#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <set>
#include <stdexcept>

#include "util/parse.h"

#include "util/circuit_breaker.h"
#include "util/clock.h"
#include "util/fault_injection.h"
#include "util/histogram.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/tsv.h"

namespace openbg::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such entity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: no such entity");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::InvalidArgument("bad"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= (v == -3);
    hi_hit |= (v == 3);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  for (size_t k : {0ul, 1ul, 5ul, 50ul, 100ul}) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, RankOneMostFrequent) {
  Rng rng(23);
  ZipfSampler zipf(50, 1.1);
  std::vector<size_t> counts(50, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(&rng)] += 1;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[49]);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 0.9);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  Rng rng(29);
  DiscreteSampler s({1.0, 3.0, 6.0});
  std::vector<size_t> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) counts[s.Sample(&rng)] += 1;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(31);
  DiscreteSampler s({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.Sample(&rng), 1u);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a\tb\tc", '\t'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinAndTrim) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("openbg", "open"));
  EXPECT_FALSE(StartsWith("open", "openbg"));
  EXPECT_TRUE(EndsWith("triple.tsv", ".tsv"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(2603046837ull), "2,603,046,837");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_NEAR(EditSimilarity("abcd", "abce"), 0.75, 1e-9);
}

TEST(StringUtilTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
}

TEST(StringUtilTest, Utf8Chars) {
  std::vector<std::string> chars = Utf8Chars("a中b");
  ASSERT_EQ(chars.size(), 3u);
  EXPECT_EQ(chars[0], "a");
  EXPECT_EQ(chars[1], "中");
  EXPECT_EQ(chars[2], "b");
}

TEST(StringUtilTest, Utf8MalformedFallsBackToBytes) {
  std::string bad = "a";
  bad.push_back(static_cast<char>(0xE4));  // truncated 3-byte sequence
  std::vector<std::string> chars = Utf8Chars(bad);
  EXPECT_EQ(chars.size(), 2u);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  // count/min/max/mean are tracked exactly; only interior percentiles are
  // answered at bucket resolution (documented <= ~2.2% relative error, 5%
  // asserted for slack).
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.Percentile(50), 50.5, 50.5 * 0.05);
  EXPECT_NEAR(h.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.Percentile(100), 100.0, 1e-9);
}

TEST(HistogramTest, EmptyHistogramReturnsZeros) {
  // The documented empty contract: no samples => every statistic is 0.0
  // (the serving metrics snapshot relies on this for endpoints that have
  // not been hit yet).
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.Add(i);
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.Min(), 1.0);
  EXPECT_EQ(a.Max(), 100.0);
  EXPECT_NEAR(a.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(a.Percentile(50), 50.5, 50.5 * 0.05);
  // Merging does not disturb the source.
  EXPECT_EQ(b.count(), 50u);
  EXPECT_EQ(b.Min(), 51.0);
  // Merging an empty histogram is a no-op; merging into an empty one
  // copies.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100u);
  Histogram c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 100u);
  EXPECT_NEAR(c.Percentile(50), a.Percentile(50), 1e-9);
}

TEST(HistogramTest, MergeAfterPercentileKeepsOrderCorrect) {
  // A Merge after a Percentile() query must fold into the same statistics
  // later queries see (the sample-keeping implementation had a lazily
  // sorted cache to invalidate here; the bucketed one must stay coherent
  // too).
  Histogram a, b;
  a.Add(10);
  a.Add(30);
  EXPECT_NEAR(a.Percentile(100), 30.0, 1e-9);
  b.Add(20);
  b.Add(5);
  a.Merge(b);
  EXPECT_NEAR(a.Percentile(0), 5.0, 1e-9);
  EXPECT_NEAR(a.Percentile(100), 30.0, 1e-9);
}

TEST(HistogramTest, ReserveDoesNotChangeStats) {
  Histogram h;
  h.Reserve(1000);
  EXPECT_EQ(h.count(), 0u);
  h.Add(2.0);
  h.Add(4.0);
  EXPECT_NEAR(h.Mean(), 3.0, 1e-9);
}

TEST(HistogramTest, AsciiChartRenders) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Add(std::pow(2.0, i % 12));
  std::string chart = h.AsciiChart(10, 40);
  EXPECT_FALSE(chart.empty());
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(HistogramTest, MemoryIsFlatInSampleCount) {
  // The histogram must hold O(buckets), not O(samples): seed the full
  // value range, snapshot the footprint, then pour in 200k more samples
  // from the same range — the footprint may not move, and stays bounded.
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Add(1e-3 * std::pow(10.0, (i % 10)));  // spans 1e-3 .. 1e6
  }
  size_t bytes_after_seed = h.AllocatedBytes();
  for (int i = 0; i < 200000; ++i) {
    h.Add(1e-3 * std::pow(10.0, (i % 10)));
  }
  EXPECT_EQ(h.AllocatedBytes(), bytes_after_seed);
  EXPECT_LT(h.AllocatedBytes(), 64u * 1024u);
  EXPECT_EQ(h.count(), 201000u);
  EXPECT_EQ(h.Max(), 1e6);
}

TEST(HistogramTest, QuantileErrorWithinDocumentedBound) {
  // Uniform 1..10000: every interior percentile must land within the
  // documented relative error of the exact sorted-sample answer.
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(i);
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double exact = p / 100.0 * 9999.0 + 1.0;
    EXPECT_NEAR(h.Percentile(p), exact, exact * 0.05)
        << "p=" << p;
  }
  // Non-positive samples rank below every positive one.
  Histogram g;
  g.Add(-5.0);
  g.Add(0.0);
  g.Add(10.0);
  EXPECT_EQ(g.Min(), -5.0);
  EXPECT_EQ(g.Percentile(0), -5.0);
  EXPECT_EQ(g.Percentile(100), 10.0);
}

TEST(TsvTest, RoundTrip) {
  std::string path = ::testing::TempDir() + "/openbg_util_test.tsv";
  {
    TsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.WriteRow({"h", "r", "t"});
    w.WriteRow({"a", "b", "c"});
    ASSERT_TRUE(w.Close().ok());
  }
  auto rows = ReadTsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"a", "b", "c"}));
  std::remove(path.c_str());
}

TEST(TsvTest, MissingFileIsIoError) {
  auto rows = ReadTsv("/nonexistent/openbg.tsv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST(TsvTest, WriteRowRejectsFieldsThatWouldShearTheFile) {
  std::string path = ::testing::TempDir() + "/openbg_util_reject.tsv";
  TsvWriter w(path);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.WriteRow({"clean", "row"}).ok());
  EXPECT_EQ(w.WriteRow({"embedded\ttab"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(w.WriteRow({"embedded\nnewline"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(w.WriteRow({"embedded\rcr"}).code(),
            StatusCode::kInvalidArgument);
  // The first rejection latches: Close() surfaces it even for callers that
  // ignored the per-row statuses, and the bad rows were never written.
  Status st = w.Close();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  auto rows = ReadTsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"clean", "row"}));
  std::remove(path.c_str());
}

TEST(TsvTest, LenientReadSkipsShortRows) {
  std::string path = ::testing::TempDir() + "/openbg_util_lenient.tsv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a\tb\tc\nshort\nd\te\tf\nx\ty\n", f);
    std::fclose(f);
  }
  // Strict: the first short row kills the read.
  EXPECT_FALSE(ReadTsv(path, 3).ok());

  ParseOptions lenient;
  lenient.policy = ParsePolicy::kSkipAndReport;
  ParseReport report;
  auto rows = ReadTsv(path, 3, lenient, &report);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.skipped, 2u);
  ASSERT_EQ(report.error_samples.size(), 2u);
  EXPECT_EQ(report.error_samples[0].line, 2u);
  EXPECT_EQ(report.error_samples[1].line, 4u);

  // max_errors caps how much garbage a "successful" load may contain.
  ParseOptions capped = lenient;
  capped.max_errors = 1;
  ParseReport capped_report;
  EXPECT_FALSE(ReadTsv(path, 3, capped, &capped_report).ok());
  std::remove(path.c_str());
}

TEST(ParseReportTest, SummaryAndSampleCap) {
  ParseOptions options;
  options.max_error_samples = 2;
  ParseReport report;
  report.records = 5;
  report.AddError(options, 3, "bad record");
  report.AddError(options, 8, "worse record");
  report.AddError(options, 9, "dropped sample");
  EXPECT_EQ(report.skipped, 3u);
  ASSERT_EQ(report.error_samples.size(), 2u);
  EXPECT_EQ(report.error_samples[0].line, 3u);
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("5 records"), std::string::npos);
  EXPECT_NE(summary.find("3 skipped"), std::string::npos);
  EXPECT_NE(summary.find("bad record"), std::string::npos);
}

// Property sweep: Uniform(n) stays in range and hits both endpoints across
// a spread of n.
class UniformRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniformRangeTest, BoundsAndCoverage) {
  uint64_t n = GetParam();
  Rng rng(n * 31 + 1);
  bool lo = false, hi = false;
  for (int i = 0; i < 4000; ++i) {
    uint64_t v = rng.Uniform(n);
    ASSERT_LT(v, n);
    lo |= (v == 0);
    hi |= (v == n - 1);
  }
  if (n <= 64) {
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformRangeTest,
                         ::testing::Values(1, 2, 3, 7, 64, 1000, 1 << 20));

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<int> visits(n, 0);
  ParallelFor(&pool, n, [&visits](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
            static_cast<int>(n));
  EXPECT_TRUE(std::all_of(visits.begin(), visits.end(),
                          [](int v) { return v == 1; }));
}

TEST(ParallelForTest, ShardBoundariesAreDeterministic) {
  // Same (n, num_threads) must shard identically across runs — the property
  // the evaluator's bit-identical guarantee leans on.
  ThreadPool pool(3);
  auto collect = [&pool] {
    std::vector<std::pair<size_t, size_t>> shards(3, {0, 0});
    std::mutex mu;
    ParallelFor(&pool, 10,
                [&](size_t shard, size_t begin, size_t end) {
                  std::lock_guard<std::mutex> lock(mu);
                  shards[shard] = {begin, end};
                });
    return shards;
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ParallelForTest, NullPoolAndTinyRangesRunInline) {
  size_t calls = 0;
  ParallelFor(nullptr, 5, [&calls](size_t shard, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(calls, 1u);

  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  ParallelFor(&pool, 0, [&total](size_t, size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 0u);
}

TEST(ThreadPoolTest, TryEnqueueRespectsQueueBound) {
  // One worker blocked on a latch; further tasks pile up in the queue.
  // TryEnqueue admits tasks only while fewer than max_queued are waiting
  // (the running task does not count against the bound).
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  // Wait until the blocker is actually running (queue empty).
  std::atomic<int> ran{0};
  while (true) {
    if (pool.TryEnqueue([&ran] { ran.fetch_add(1); }, 1)) break;
    std::this_thread::yield();
  }
  // Queue now holds exactly 1 waiting task: bound of 1 rejects, 2 admits.
  EXPECT_FALSE(pool.TryEnqueue([&ran] { ran.fetch_add(1); }, 1));
  EXPECT_TRUE(pool.TryEnqueue([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_FALSE(pool.TryEnqueue([&ran] { ran.fetch_add(1); }, 2));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 2);  // the two admitted tasks ran; rejects did not
}

TEST(ThreadPoolTest, TryEnqueueZeroBoundAlwaysRejects) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.TryEnqueue([&ran] { ran.fetch_add(1); }, 0));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.WaitIdle();
  pool.WaitIdle();
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  // 8 workers over 3 items: some shards are empty; every index is still
  // covered exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  for (auto& v : visits) v.store(0);
  ParallelFor(&pool, 3, [&visits](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ShardExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<size_t> completed{0};
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [&completed](size_t shard, size_t, size_t) {
                    if (shard == 1) throw std::runtime_error("shard boom");
                    completed.fetch_add(1);
                  }),
      std::runtime_error);
  // Every non-throwing shard still ran; the pool is reusable afterwards.
  EXPECT_EQ(completed.load(), 3u);
  std::atomic<size_t> total{0};
  ParallelFor(&pool, 100, [&total](size_t, size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(FakeClockTest, SleepAdvancesInsteadOfStalling) {
  FakeClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.SleepFor(50);
  EXPECT_EQ(clock.NowMicros(), 150u);
  clock.Advance(10);
  EXPECT_EQ(clock.NowMicros(), 160u);
}

TEST(RetryPolicyTest, FirstTrySuccessDoesNotSleep) {
  FakeClock clock;
  RetryOptions opts;
  opts.clock = &clock;
  RetryPolicy policy(opts);
  RetryPolicy::Outcome out = policy.Run([] { return Status::OK(); });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.backoff_us, 0u);
  EXPECT_EQ(clock.NowMicros(), 0u);
}

TEST(RetryPolicyTest, TransientFaultIsAbsorbedWithExponentialBackoff) {
  FakeClock clock;
  RetryOptions opts;
  opts.max_attempts = 5;
  opts.initial_backoff_us = 200;
  opts.multiplier = 2.0;
  opts.jitter = false;  // exact backoff sequence: 200, 400
  opts.clock = &clock;
  RetryPolicy policy(opts);
  int calls = 0;
  RetryPolicy::Outcome out = policy.Run([&calls] {
    return ++calls <= 2 ? Status::IoError("transient") : Status::OK();
  });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.backoff_us, 600u);
  EXPECT_EQ(clock.NowMicros(), 600u);  // slept exactly the backoff
}

TEST(RetryPolicyTest, NonRetryableStatusStopsImmediately) {
  FakeClock clock;
  RetryOptions opts;
  opts.clock = &clock;
  RetryPolicy policy(opts);
  int calls = 0;
  RetryPolicy::Outcome out = policy.Run([&calls] {
    ++calls;
    return Status::InvalidArgument("terminal");
  });
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMicros(), 0u);  // no backoff for a terminal error
}

TEST(RetryPolicyTest, AttemptBudgetExhaustsWithLastStatus) {
  FakeClock clock;
  RetryOptions opts;
  opts.max_attempts = 3;
  opts.jitter = false;
  opts.clock = &clock;
  RetryPolicy policy(opts);
  int calls = 0;
  RetryPolicy::Outcome out = policy.Run([&calls] {
    ++calls;
    return Status::IoError(StrFormat("fault %d", calls));
  });
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(out.status.ToString(), "IoError: fault 3");
}

TEST(RetryPolicyTest, WallClockBudgetStopsRetrying) {
  FakeClock clock;
  RetryOptions opts;
  opts.max_attempts = 100;
  opts.initial_backoff_us = 200;
  opts.total_budget_us = 500;
  opts.jitter = false;
  opts.clock = &clock;
  RetryPolicy policy(opts);
  int calls = 0;
  RetryPolicy::Outcome out = policy.Run([&calls] {
    ++calls;
    return Status::IoError("never heals");
  });
  EXPECT_FALSE(out.ok());
  // Far fewer than 100 attempts: the 500us budget (with 200us+ backoffs)
  // admits only the first few. Sleeps never overshoot the budget.
  EXPECT_LT(calls, 5);
  EXPECT_EQ(out.attempts, calls);
  EXPECT_LE(clock.NowMicros(), 500u);
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryOptions opts;
  opts.max_attempts = 6;
  opts.jitter = true;
  opts.seed = 1234;
  auto always_fail = [] { return Status::IoError("x"); };
  FakeClock c1, c2;
  RetryOptions o1 = opts, o2 = opts;
  o1.clock = &c1;
  o2.clock = &c2;
  RetryPolicy::Outcome a = RetryPolicy(o1).Run(always_fail);
  RetryPolicy::Outcome b = RetryPolicy(o2).Run(always_fail);
  EXPECT_EQ(a.backoff_us, b.backoff_us);
  EXPECT_GT(a.backoff_us, 0u);
  RetryOptions o3 = opts;
  o3.seed = 99;
  FakeClock c3;
  o3.clock = &c3;
  RetryPolicy::Outcome c = RetryPolicy(o3).Run(always_fail);
  EXPECT_NE(a.backoff_us, c.backoff_us);  // different stream
}

TEST(RetryPolicyTest, CustomRetryablePredicateWins) {
  FakeClock clock;
  RetryOptions opts;
  opts.max_attempts = 3;
  opts.jitter = false;
  opts.clock = &clock;
  RetryPolicy policy(opts);
  int calls = 0;
  // NotFound is not retryable by default; the custom predicate makes it so.
  RetryPolicy::Outcome out = policy.Run(
      [&calls] {
        return ++calls < 3 ? Status::NotFound("eventually appears")
                           : Status::OK();
      },
      [](const Status& s) { return s.code() == StatusCode::kNotFound; });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 3);
}

TEST(CircuitBreakerTest, StaysClosedOnSuccesses) {
  CircuitBreaker breaker;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ZeroThresholdDoesNotTripOnPureSuccesses) {
  // Regression: threshold 0.0 must mean "trip on ANY failure", not "trip
  // on 0 failures >= 0".
  CircuitBreakerOptions opts;
  opts.failure_threshold = 0.0;
  opts.min_samples = 4;
  CircuitBreaker breaker(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, TripsAtFailureThresholdAfterMinSamples) {
  FakeClock clock;
  CircuitBreakerOptions opts;
  opts.window = 8;
  opts.min_samples = 4;
  opts.failure_threshold = 0.5;
  opts.clock = &clock;
  CircuitBreaker breaker(opts);
  // Three failures: below min_samples, must not trip yet.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // 4 of 4 failed >= 50%
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().opens, 1u);
  EXPECT_GE(breaker.stats().rejected, 1u);
}

TEST(CircuitBreakerTest, CooldownProbesThenRecloses) {
  FakeClock clock;
  CircuitBreakerOptions opts;
  opts.window = 8;
  opts.min_samples = 2;
  opts.failure_threshold = 0.5;
  opts.open_cooldown_us = 1000;
  opts.half_open_probes = 2;
  opts.clock = &clock;
  CircuitBreaker breaker(opts);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // cooldown still running
  clock.Advance(1000);
  EXPECT_TRUE(breaker.Allow());  // first probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());   // second probe
  EXPECT_FALSE(breaker.Allow());  // probe quota reached
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  // The window was blanked on open: one new failure (below min_samples)
  // must not immediately re-trip the fresh close.
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  FakeClock clock;
  CircuitBreakerOptions opts;
  opts.min_samples = 2;
  opts.open_cooldown_us = 1000;
  opts.clock = &clock;
  CircuitBreaker breaker(opts);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  clock.Advance(1000);
  ASSERT_TRUE(breaker.Allow());  // probe
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.stats().opens, 2u);
  EXPECT_FALSE(breaker.Allow());  // new cooldown
}

TEST(CircuitBreakerTest, RecordCancelReleasesProbeSlot) {
  FakeClock clock;
  CircuitBreakerOptions opts;
  opts.min_samples = 2;
  opts.open_cooldown_us = 100;
  opts.half_open_probes = 1;
  opts.clock = &clock;
  CircuitBreaker breaker(opts);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  clock.Advance(100);
  ASSERT_TRUE(breaker.Allow());   // the only probe slot
  EXPECT_FALSE(breaker.Allow());  // quota reached
  breaker.RecordCancel();         // probe abandoned (e.g. deadline expiry)
  EXPECT_TRUE(breaker.Allow());   // slot released: next caller probes
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().cancels, 1u);
}

class FailpointSpecTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(FailpointSpecTest, FireCountHealsTheSite) {
  failpoints::FailpointSpec spec;
  spec.fire_count = 1;  // one transient fault, then healed
  failpoints::ArmSpec("test::heal", spec);
  EXPECT_TRUE(failpoints::Triggered("test::heal"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(failpoints::Triggered("test::heal")) << "hit " << i;
  }
  EXPECT_EQ(failpoints::FireCount("test::heal"), 1u);
}

TEST_F(FailpointSpecTest, SucceedFirstWindowThenFires) {
  failpoints::FailpointSpec spec;
  spec.succeed_first = 2;
  failpoints::ArmSpec("test::window", spec);
  EXPECT_FALSE(failpoints::Triggered("test::window"));
  EXPECT_FALSE(failpoints::Triggered("test::window"));
  EXPECT_TRUE(failpoints::Triggered("test::window"));
  EXPECT_TRUE(failpoints::Triggered("test::window"));
}

TEST_F(FailpointSpecTest, ProbabilisticFiringIsSeedDeterministic) {
  failpoints::FailpointSpec spec;
  spec.probability = 0.5;
  spec.seed = 42;
  failpoints::ArmSpec("test::prob", spec);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(failpoints::Triggered("test::prob"));
  failpoints::ArmSpec("test::prob", spec);  // re-arm resets the hit counter
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) second.push_back(failpoints::Triggered("test::prob"));
  EXPECT_EQ(first, second);
  size_t fired = static_cast<size_t>(std::count(first.begin(), first.end(), true));
  // Loose bounds: p=0.5 over 200 hits lands well inside [60, 140].
  EXPECT_GT(fired, 60u);
  EXPECT_LT(fired, 140u);
  failpoints::FailpointSpec other = spec;
  other.seed = 43;
  failpoints::ArmSpec("test::prob", other);
  std::vector<bool> third;
  for (int i = 0; i < 200; ++i) third.push_back(failpoints::Triggered("test::prob"));
  EXPECT_NE(first, third);  // a different seed decides differently
}

TEST_F(FailpointSpecTest, KindSelectionCoversRange) {
  failpoints::FailpointSpec spec;
  spec.num_kinds = 3;
  spec.seed = 7;
  failpoints::ArmSpec("test::kinds", spec);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    int kind = failpoints::TriggeredKind("test::kinds");
    ASSERT_GE(kind, 0);  // probability 1: every hit fires
    ASSERT_LT(kind, 3);
    seen.insert(kind);
  }
  EXPECT_EQ(seen.size(), 3u) << "200 draws should cover all 3 kinds";
}

TEST_F(FailpointSpecTest, RetryPolicyAbsorbsTransientFailpoint) {
  // The composition the serving layer relies on: a fire_count=1 fault plus
  // a 3-attempt policy means the caller never sees the error.
  failpoints::FailpointSpec spec;
  spec.fire_count = 1;
  failpoints::ArmSpec("test::transient", spec);
  FakeClock clock;
  RetryOptions opts;
  opts.clock = &clock;
  RetryPolicy policy(opts);
  RetryPolicy::Outcome out = policy.Run([] {
    return failpoints::Triggered("test::transient")
               ? Status::IoError("injected")
               : Status::OK();
  });
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.attempts, 2);
}

}  // namespace
}  // namespace openbg::util
