// Tests for the live-update MVCC layer (src/rdf/delta_segment.*,
// src/rdf/live_graph.*): delta normalization against the base store,
// snapshot isolation under concurrent publish, retract/re-add semantics,
// foreground and background compaction, the bounded publish history the
// serving layer syncs from, write-ahead delta durability, and — the
// ISSUE's headline property — crash recovery to the prior generation at
// every failpoint on the publish path.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rdf/delta_segment.h"
#include "rdf/live_graph.h"
#include "rdf/snapshot.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/clock.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace openbg::rdf {
namespace {

constexpr TermId kAny = TriplePattern::kAny;

bool TripleLess(const Triple& a, const Triple& b) {
  if (a.s != b.s) return a.s < b.s;
  if (a.p != b.p) return a.p < b.p;
  return a.o < b.o;
}

std::shared_ptr<TripleStore> SmallBase() {
  auto store = std::make_shared<TripleStore>();
  store->Add(1, 10, 100);
  store->Add(1, 10, 101);
  store->Add(2, 10, 100);
  store->Add(2, 11, 102);
  store->Add(3, 12, 103);
  return store;
}

std::vector<Triple> SortedTriples(const TripleStore& store) {
  std::vector<Triple> out = store.triples();
  std::sort(out.begin(), out.end(), TripleLess);
  return out;
}

std::vector<Triple> SortedTriples(const GraphSnapshot& snap) {
  std::vector<Triple> out = snap.Match(TriplePattern{});
  std::sort(out.begin(), out.end(), TripleLess);
  return out;
}

class LiveGraphTest : public ::testing::Test {
 protected:
  void TearDown() override { util::failpoints::DisarmAll(); }
};

TEST_F(LiveGraphTest, DeltaBuildNormalizesAgainstBase) {
  std::shared_ptr<TripleStore> base = SmallBase();
  base->SealIndexes();
  UpdateBatch batch;
  batch.adds.push_back({4, 10, 104});   // genuinely new
  batch.adds.push_back({1, 10, 100});   // already in base: no-op add
  batch.adds.push_back({4, 10, 104});   // duplicate add: deduplicated
  batch.retracts.push_back({2, 10, 100});  // base triple: real retract
  batch.retracts.push_back({9, 9, 9});     // not in base: no-op retract
  util::Result<std::shared_ptr<const DeltaSegment>> built =
      DeltaSegment::Build(nullptr, batch, *base);
  ASSERT_TRUE(built.ok()) << built.status().message();
  const DeltaSegment& delta = *built.value();
  EXPECT_EQ(delta.adds().size(), 1u);
  EXPECT_TRUE(delta.ContainsAdd({4, 10, 104}));
  EXPECT_EQ(delta.num_retracts(), 1u);
  EXPECT_TRUE(delta.IsRetracted({2, 10, 100}));
  EXPECT_TRUE(
      std::is_sorted(delta.adds().begin(), delta.adds().end(), TripleLess));

  // Same triple added AND retracted in one batch: the retract wins.
  UpdateBatch conflicted;
  conflicted.adds.push_back({5, 10, 105});
  conflicted.retracts.push_back({5, 10, 105});
  built = DeltaSegment::Build(nullptr, conflicted, *base);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built.value()->empty());

  UpdateBatch invalid;
  invalid.adds.push_back({kInvalidTerm, 1, 2});
  EXPECT_FALSE(DeltaSegment::Build(nullptr, invalid, *base).ok());
}

TEST_F(LiveGraphTest, DeltaReAddCancelsRetractAcrossBatches) {
  std::shared_ptr<TripleStore> base = SmallBase();
  base->SealIndexes();
  UpdateBatch retract;
  retract.retracts.push_back({1, 10, 100});
  auto first = DeltaSegment::Build(nullptr, retract, *base);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value()->IsRetracted({1, 10, 100}));
  // Re-adding a retracted base triple cancels the retract rather than
  // duplicating the triple into `adds` (it is already in the base).
  UpdateBatch readd;
  readd.adds.push_back({1, 10, 100});
  auto second = DeltaSegment::Build(first.value().get(), readd, *base);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value()->IsRetracted({1, 10, 100}));
  EXPECT_FALSE(second.value()->ContainsAdd({1, 10, 100}));
  // And retracting a pure delta add removes the add, leaving no retract.
  UpdateBatch add_new;
  add_new.adds.push_back({7, 10, 107});
  auto third = DeltaSegment::Build(second.value().get(), add_new, *base);
  ASSERT_TRUE(third.ok());
  UpdateBatch drop_new;
  drop_new.retracts.push_back({7, 10, 107});
  auto fourth = DeltaSegment::Build(third.value().get(), drop_new, *base);
  ASSERT_TRUE(fourth.ok());
  EXPECT_FALSE(fourth.value()->ContainsAdd({7, 10, 107}));
  EXPECT_EQ(fourth.value()->num_retracts(), 0u);
}

TEST_F(LiveGraphTest, TouchedKeysCoverSubjectAndObjectOfEveryMutation) {
  UpdateBatch batch;
  batch.adds.push_back({1, 10, 100});
  batch.retracts.push_back({2, 11, 100});
  std::vector<uint64_t> touched = TouchedKeys(batch);
  EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
  for (TermId id : {1u, 100u, 2u}) {
    EXPECT_TRUE(std::binary_search(touched.begin(), touched.end(),
                                   EntityDepKey(id)))
        << "entity " << id;
  }
  // Predicates are not entities: the touched set is entity-keyed.
  EXPECT_FALSE(std::binary_search(touched.begin(), touched.end(),
                                  EntityDepKey(10)));
  // Object 100 appears in both mutations but only once in the set.
  EXPECT_EQ(touched.size(), 3u);
}

TEST_F(LiveGraphTest, SnapshotMergesBaseAndDelta) {
  std::shared_ptr<TripleStore> base = SmallBase();
  base->SealIndexes();
  UpdateBatch batch;
  batch.adds.push_back({1, 10, 109});
  batch.retracts.push_back({1, 10, 101});
  auto delta = DeltaSegment::Build(nullptr, batch, *base);
  ASSERT_TRUE(delta.ok());
  GraphSnapshot snap;
  snap.base = base;
  snap.delta = delta.value();
  snap.generation = 2;

  EXPECT_TRUE(snap.Contains(1, 10, 109));   // delta add
  EXPECT_FALSE(snap.Contains(1, 10, 101));  // retracted base triple
  EXPECT_TRUE(snap.Contains(1, 10, 100));   // untouched base triple
  EXPECT_EQ(snap.size(), base->size());     // one add, one retract
  std::vector<Triple> got = snap.Match(TriplePattern{1, 10, kAny});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Triple{1, 10, 100}));
  EXPECT_EQ(got[1], (Triple{1, 10, 109}));
  EXPECT_EQ(snap.CountMatches(TriplePattern{}), base->size());
  // Early stop works across the base/delta seam.
  size_t seen = 0;
  snap.ForEachMatchFn(TriplePattern{1, 10, kAny}, [&seen](const Triple&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1u);
}

TEST_F(LiveGraphTest, ApplyPublishesAndOldSnapshotsStayFrozen) {
  LiveGraph live(SmallBase());
  EXPECT_EQ(live.generation(), 1u);
  std::shared_ptr<const GraphSnapshot> before = live.Acquire();

  UpdateBatch batch;
  batch.adds.push_back({6, 10, 106});
  batch.retracts.push_back({3, 12, 103});
  ASSERT_TRUE(live.Apply(batch).ok());
  EXPECT_EQ(live.generation(), 2u);

  // The pre-publish snapshot is bitwise what it was (MVCC isolation)...
  EXPECT_EQ(before->generation, 1u);
  EXPECT_FALSE(before->Contains(6, 10, 106));
  EXPECT_TRUE(before->Contains(3, 12, 103));
  // ...and the new snapshot sees the batch.
  std::shared_ptr<const GraphSnapshot> after = live.Acquire();
  EXPECT_TRUE(after->Contains(6, 10, 106));
  EXPECT_FALSE(after->Contains(3, 12, 103));
  EXPECT_EQ(after->size(), before->size());

  // An empty batch publishes nothing.
  ASSERT_TRUE(live.Apply(UpdateBatch{}).ok());
  EXPECT_EQ(live.generation(), 2u);
}

TEST_F(LiveGraphTest, CompactionPreservesContentAndOldSnapshots) {
  LiveGraph live(SmallBase());
  UpdateBatch batch;
  batch.adds.push_back({6, 10, 106});
  batch.retracts.push_back({1, 10, 100});
  ASSERT_TRUE(live.Apply(batch).ok());
  std::shared_ptr<const GraphSnapshot> overlaid = live.Acquire();
  std::vector<Triple> before = SortedTriples(*overlaid);
  ASSERT_NE(overlaid->delta, nullptr);

  ASSERT_TRUE(live.Compact().ok());
  std::shared_ptr<const GraphSnapshot> compacted = live.Acquire();
  EXPECT_EQ(compacted->generation, overlaid->generation + 1);
  EXPECT_EQ(compacted->delta, nullptr);
  EXPECT_TRUE(compacted->base->IndexesSealed());
  EXPECT_EQ(SortedTriples(*compacted), before) << "compaction changed content";
  // The overlaid snapshot still answers identically: its base is kept
  // alive by shared ownership even though the live graph moved on.
  EXPECT_EQ(SortedTriples(*overlaid), before);
  // Compacting an already-clean graph is a no-op.
  uint64_t gen = live.generation();
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.generation(), gen);
}

TEST_F(LiveGraphTest, ThresholdTriggersBackgroundCompaction) {
  util::ThreadPool pool(2);
  LiveGraph::Options options;
  options.compact_threshold = 4;
  options.pool = &pool;
  LiveGraph live(SmallBase(), options);
  for (TermId i = 0; i < 6; ++i) {
    UpdateBatch batch;
    batch.adds.push_back({20 + i, 10, 300 + i});
    ASSERT_TRUE(live.Apply(batch).ok());
  }
  live.WaitForCompaction();
  std::shared_ptr<const GraphSnapshot> snap = live.Acquire();
  // The delta was folded away (entirely, or up to the adds that landed
  // after the fold was scheduled).
  EXPECT_TRUE(snap->delta == nullptr || snap->delta->size() < 6u);
  for (TermId i = 0; i < 6; ++i) {
    EXPECT_TRUE(snap->Contains(20 + i, 10, 300 + i)) << i;
  }
  EXPECT_EQ(snap->size(), SmallBase()->size() + 6);
}

TEST_F(LiveGraphTest, PublishHistoryIsBoundedAndDetectsGaps) {
  LiveGraph live(SmallBase());
  auto one_add = [](TermId i) {
    UpdateBatch b;
    b.adds.push_back({40, 10, 400 + i});
    return b;
  };
  ASSERT_TRUE(live.Apply(one_add(0)).ok());  // generation 2
  std::vector<PublishRecord> records;
  ASSERT_TRUE(live.CollectPublishesSince(1, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].generation, 2u);
  EXPECT_TRUE(std::binary_search(records[0].touched.begin(),
                                 records[0].touched.end(),
                                 EntityDepKey(40)));
  // Push the history past its bound: the oldest records fall off and a
  // reader that far behind is told so (it must invalidate everything).
  for (TermId i = 1; i <= LiveGraph::kMaxHistory + 5; ++i) {
    ASSERT_TRUE(live.Apply(one_add(i)).ok());
  }
  records.clear();
  EXPECT_FALSE(live.CollectPublishesSince(1, &records));
  records.clear();
  EXPECT_TRUE(live.CollectPublishesSince(live.generation(), &records));
  EXPECT_TRUE(records.empty());
  records.clear();
  EXPECT_TRUE(live.CollectPublishesSince(live.generation() - 3, &records));
  EXPECT_EQ(records.size(), 3u);
}

TEST_F(LiveGraphTest, DeltaBatchRoundTripsAndFailsClosed) {
  std::string path = ::testing::TempDir() + "/openbg_delta_rt.obgd";
  UpdateBatch batch;
  batch.adds.push_back({1, 2, 3});
  batch.adds.push_back({4, 5, 6});
  batch.retracts.push_back({7, 8, 9});
  ASSERT_TRUE(SaveDeltaBatch(batch, 17, path).ok());
  UpdateBatch loaded;
  uint64_t generation = 0;
  ASSERT_TRUE(LoadDeltaBatch(path, &loaded, &generation).ok());
  EXPECT_EQ(generation, 17u);
  EXPECT_EQ(loaded.adds, batch.adds);
  EXPECT_EQ(loaded.retracts, batch.retracts);
  // Truncation is detected, and the failed load leaves outputs untouched.
  util::Result<uint64_t> size = util::FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::TruncateFile(path, size.value() - 5).ok());
  UpdateBatch unchanged = loaded;
  uint64_t unchanged_gen = generation;
  EXPECT_FALSE(LoadDeltaBatch(path, &loaded, &generation).ok());
  EXPECT_EQ(loaded.adds, unchanged.adds);
  EXPECT_EQ(generation, unchanged_gen);
  std::remove(path.c_str());
}

/// The tentpole durability property: arm each failpoint on the publish
/// path in turn, watch the publish fail, and prove that BOTH the in-memory
/// snapshot AND a cold recovery from disk (base snapshot + delta replay)
/// land on the prior generation with the prior content.
TEST_F(LiveGraphTest, CrashAtEveryPublishFailpointRecoversPriorGeneration) {
  const char* kSites[] = {"live::publish", "atomic_file::write",
                          "atomic_file::fsync", "atomic_file::rename"};
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    std::string dir = ::testing::TempDir();
    std::string base_path = dir + "/openbg_live_base.obgsnap";

    // World: a dict-backed base saved to disk, wrapped in a LiveGraph
    // journaling to `dir`.
    TermDict dict;
    auto base = std::make_shared<TripleStore>();
    std::vector<TermId> e(8);
    for (size_t i = 0; i < e.size(); ++i) {
      e[i] = dict.AddIri("http://x/e" + std::to_string(i));
    }
    base->Add(e[0], e[1], e[2]);
    base->Add(e[3], e[1], e[4]);
    ASSERT_TRUE(SaveSnapshot(dict, *base, base_path).ok());

    LiveGraph::Options options;
    options.delta_dir = dir;
    LiveGraph live(base, options);

    // One successful publish first, so recovery must replay real state.
    UpdateBatch first;
    first.adds.push_back({e[5], e[1], e[6]});
    ASSERT_TRUE(live.Apply(first).ok());
    ASSERT_EQ(live.generation(), 2u);
    ASSERT_TRUE(util::FileExists(DeltaFilePath(dir, 2)));
    std::vector<Triple> good = SortedTriples(*live.Acquire());

    // The crash: the next publish dies at `site`.
    util::failpoints::Arm(site);
    UpdateBatch second;
    second.adds.push_back({e[7], e[1], e[6]});
    second.retracts.push_back({e[0], e[1], e[2]});
    EXPECT_FALSE(live.Apply(second).ok());
    util::failpoints::Disarm(site);

    // In memory: prior generation, prior content, and no delta file for
    // the attempted generation (AtomicFile never leaves a torn target).
    EXPECT_EQ(live.generation(), 2u);
    EXPECT_EQ(SortedTriples(*live.Acquire()), good);
    EXPECT_FALSE(util::FileExists(DeltaFilePath(dir, 3)));

    // Cold recovery from disk reaches the same generation and content.
    TermDict rdict;
    TripleStore rstore;
    ASSERT_TRUE(LoadSnapshot(base_path, &rdict, &rstore).ok());
    uint64_t recovered = 0;
    ASSERT_TRUE(ReplayDeltaDir(dir, 1, &rstore, &recovered).ok());
    EXPECT_EQ(recovered, 2u);
    EXPECT_EQ(SortedTriples(rstore), good);

    // And the failed batch applies cleanly once the fault is gone.
    ASSERT_TRUE(live.Apply(second).ok());
    EXPECT_EQ(live.generation(), 3u);
    EXPECT_TRUE(live.Acquire()->Contains(e[7], e[1], e[6]));
    EXPECT_FALSE(live.Acquire()->Contains(e[0], e[1], e[2]));

    for (uint64_t g = 2; g <= 3; ++g) {
      std::remove(DeltaFilePath(dir, g).c_str());
    }
    std::remove(base_path.c_str());
  }
}

TEST_F(LiveGraphTest, ReplayStopsAtGapAndFailsClosedOnCorruption) {
  std::string dir = ::testing::TempDir();
  UpdateBatch b2, b3;
  b2.adds.push_back({1, 2, 30});
  b3.adds.push_back({1, 2, 31});
  ASSERT_TRUE(SaveDeltaBatch(b2, 2, DeltaFilePath(dir, 2)).ok());
  ASSERT_TRUE(SaveDeltaBatch(b3, 3, DeltaFilePath(dir, 3)).ok());

  // Clean chain: both replay.
  {
    TripleStore store;
    store.Add(9, 9, 9);
    uint64_t gen = 0;
    ASSERT_TRUE(ReplayDeltaDir(dir, 1, &store, &gen).ok());
    EXPECT_EQ(gen, 3u);
    EXPECT_EQ(store.size(), 3u);
  }
  // A gap (gen 2 missing) ends the chain before gen 3.
  ASSERT_EQ(std::remove(DeltaFilePath(dir, 2).c_str()), 0);
  {
    TripleStore store;
    store.Add(9, 9, 9);
    uint64_t gen = 0;
    ASSERT_TRUE(ReplayDeltaDir(dir, 1, &store, &gen).ok());
    EXPECT_EQ(gen, 1u);
    EXPECT_EQ(store.size(), 1u);
  }
  // A corrupt file aborts the replay with an error (fail closed).
  ASSERT_TRUE(SaveDeltaBatch(b2, 2, DeltaFilePath(dir, 2)).ok());
  util::Result<uint64_t> size = util::FileSize(DeltaFilePath(dir, 3));
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::FlipBit(DeltaFilePath(dir, 3), size.value() / 2, 3).ok());
  {
    TripleStore store;
    store.Add(9, 9, 9);
    uint64_t gen = 0;
    EXPECT_FALSE(ReplayDeltaDir(dir, 1, &store, &gen).ok());
  }
  std::remove(DeltaFilePath(dir, 2).c_str());
  std::remove(DeltaFilePath(dir, 3).c_str());
}

TEST_F(LiveGraphTest, TransientWalFaultIsRetriedAndPublishSucceeds) {
  // A fire_count=1 fault on the delta-file rename: the first WAL attempt
  // fails, the retry succeeds, and the caller never sees an error.
  std::string dir = ::testing::TempDir();
  util::FakeClock clock;
  LiveGraph::Options options;
  options.delta_dir = dir;
  options.retry.clock = &clock;
  LiveGraph live(SmallBase(), options);

  util::failpoints::FailpointSpec spec;
  spec.fire_count = 1;
  util::failpoints::ArmSpec("atomic_file::rename", spec);
  UpdateBatch batch;
  batch.adds.push_back({7, 10, 107});
  ASSERT_TRUE(live.Apply(batch).ok());

  EXPECT_EQ(live.generation(), 2u);
  EXPECT_TRUE(live.Acquire()->Contains(7, 10, 107));
  EXPECT_TRUE(util::FileExists(DeltaFilePath(dir, 2)));
  LiveGraph::StatsSnapshot stats = live.stats();
  EXPECT_GE(stats.publish_retries, 1u);
  EXPECT_EQ(stats.publish_failures, 0u);
  EXPECT_EQ(stats.consecutive_publish_failures, 0u);
  EXPECT_GT(clock.NowMicros(), 0u);  // the retry actually backed off
  std::remove(DeltaFilePath(dir, 2).c_str());
}

TEST_F(LiveGraphTest, ExhaustedWalRetriesFailThePublishAndCount) {
  std::string dir = ::testing::TempDir();
  util::FakeClock clock;
  LiveGraph::Options options;
  options.delta_dir = dir;
  options.retry.clock = &clock;
  LiveGraph live(SmallBase(), options);

  util::failpoints::Arm("atomic_file::rename");  // fires forever
  UpdateBatch batch;
  batch.adds.push_back({7, 10, 107});
  EXPECT_FALSE(live.Apply(batch).ok());
  util::failpoints::DisarmAll();

  EXPECT_EQ(live.generation(), 1u);
  LiveGraph::StatsSnapshot stats = live.stats();
  EXPECT_EQ(stats.publish_failures, 1u);
  EXPECT_EQ(stats.consecutive_publish_failures, 1u);
  // The fault heals -> the same batch lands and the streak resets.
  ASSERT_TRUE(live.Apply(batch).ok());
  EXPECT_EQ(live.stats().consecutive_publish_failures, 0u);
  std::remove(DeltaFilePath(dir, 2).c_str());
}

TEST_F(LiveGraphTest, TransientCompactionFaultIsRetried) {
  util::FakeClock clock;
  LiveGraph::Options options;
  options.retry.clock = &clock;
  LiveGraph live(SmallBase(), options);
  UpdateBatch batch;
  batch.adds.push_back({8, 10, 108});
  ASSERT_TRUE(live.Apply(batch).ok());

  util::failpoints::FailpointSpec spec;
  spec.fire_count = 1;
  util::failpoints::ArmSpec("live::compact", spec);
  ASSERT_TRUE(live.Compact().ok());

  EXPECT_EQ(live.delta_size(), 0u);
  EXPECT_TRUE(live.Acquire()->Contains(8, 10, 108));
  LiveGraph::StatsSnapshot stats = live.stats();
  EXPECT_GE(stats.compact_retries, 1u);
  EXPECT_EQ(stats.compact_failures, 0u);
  EXPECT_EQ(stats.compactions, 1u);
}

TEST_F(LiveGraphTest, BackgroundCompactionFailureNeverWedges) {
  // ISSUE acceptance: a transient fault during compaction is retried; one
  // that outlives the retry budget delays compaction but must never wedge
  // it — the next Apply whose delta still exceeds the threshold simply
  // re-schedules.
  util::ThreadPool pool(2);
  util::FakeClock clock;
  LiveGraph::Options options;
  options.compact_threshold = 2;
  options.pool = &pool;
  options.retry.clock = &clock;
  LiveGraph live(SmallBase(), options);

  util::failpoints::Arm("live::compact");  // outlives every retry budget
  UpdateBatch batch;
  batch.adds.push_back({8, 10, 108});
  batch.adds.push_back({8, 10, 109});
  ASSERT_TRUE(live.Apply(batch).ok());
  live.WaitForCompaction();  // must return: the failed task cleared pending

  EXPECT_GE(live.delta_size(), 2u);  // compaction did not happen
  LiveGraph::StatsSnapshot stats = live.stats();
  EXPECT_GE(stats.compact_failures, 1u);
  EXPECT_GE(stats.consecutive_compact_failures, 1u);

  // Fault clears; the next over-threshold publish re-triggers compaction
  // and it succeeds.
  util::failpoints::DisarmAll();
  UpdateBatch more;
  more.adds.push_back({8, 10, 110});
  ASSERT_TRUE(live.Apply(more).ok());
  live.WaitForCompaction();
  EXPECT_EQ(live.delta_size(), 0u);
  stats = live.stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(stats.consecutive_compact_failures, 0u);
  EXPECT_TRUE(live.Acquire()->Contains(8, 10, 108));
  EXPECT_TRUE(live.Acquire()->Contains(8, 10, 110));
}

TEST_F(LiveGraphTest, SaturatedPoolFallsBackToInlineCompaction) {
  // max_queued_compactions = 0 makes TryEnqueue reject every handoff (the
  // bounded-admission satellite): the publish must compact inline rather
  // than silently drop the scheduled compaction.
  util::ThreadPool pool(1);
  LiveGraph::Options options;
  options.compact_threshold = 2;
  options.pool = &pool;
  options.max_queued_compactions = 0;
  LiveGraph live(SmallBase(), options);

  UpdateBatch batch;
  batch.adds.push_back({8, 10, 108});
  batch.adds.push_back({8, 10, 109});
  ASSERT_TRUE(live.Apply(batch).ok());
  live.WaitForCompaction();  // inline path must also clear pending

  LiveGraph::StatsSnapshot stats = live.stats();
  EXPECT_EQ(stats.inline_fallbacks, 1u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(live.delta_size(), 0u);
  EXPECT_TRUE(live.Acquire()->Contains(8, 10, 108));
}

TEST_F(LiveGraphTest, QuarantineReplayServesLastGoodGeneration) {
  std::string dir = ::testing::TempDir() + "/openbg_quarantine";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  UpdateBatch b2, b3, b4;
  b2.adds.push_back({1, 2, 30});
  b3.adds.push_back({1, 2, 31});
  b4.adds.push_back({1, 2, 32});
  ASSERT_TRUE(SaveDeltaBatch(b2, 2, DeltaFilePath(dir, 2)).ok());
  ASSERT_TRUE(SaveDeltaBatch(b3, 3, DeltaFilePath(dir, 3)).ok());
  ASSERT_TRUE(SaveDeltaBatch(b4, 4, DeltaFilePath(dir, 4)).ok());
  // Rot generation 3 and leave a crash orphan next to the chain.
  util::Result<uint64_t> size = util::FileSize(DeltaFilePath(dir, 3));
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::FlipBit(DeltaFilePath(dir, 3), size.value() / 2, 3).ok());
  {
    std::ofstream orphan(dir + "/delta.obgd.tmp");
    orphan << "torn";
  }

  // Strict mode still fails closed.
  {
    TripleStore store;
    uint64_t gen = 0;
    EXPECT_FALSE(ReplayDeltaDir(dir, 1, &store, &gen).ok());
  }
  // Quarantine mode: replay stops cleanly at generation 2, the corrupt
  // file is moved aside (not destroyed), and the stale temp is swept.
  std::vector<std::string> quarantined;
  ReplayOptions ropts;
  ropts.quarantine_corrupt = true;
  ropts.sweep_stale_temps = true;
  ropts.quarantined = &quarantined;
  TripleStore store;
  store.Add(9, 9, 9);
  uint64_t gen = 0;
  ASSERT_TRUE(ReplayDeltaDir(dir, 1, &store, &gen, ropts).ok());
  EXPECT_EQ(gen, 2u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(1, 2, 30));
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], DeltaFilePath(dir, 3) + ".quarantine");
  EXPECT_FALSE(util::FileExists(DeltaFilePath(dir, 3)));
  EXPECT_TRUE(util::FileExists(quarantined[0]));
  EXPECT_FALSE(util::FileExists(dir + "/delta.obgd.tmp"));
  // Generation 4 is untouched — past the gap, but preserved for forensics.
  EXPECT_TRUE(util::FileExists(DeltaFilePath(dir, 4)));

  // A second quarantine replay is idempotent (nothing left to move).
  {
    TripleStore again;
    uint64_t g = 0;
    ASSERT_TRUE(ReplayDeltaDir(dir, 1, &again, &g, ropts).ok());
    EXPECT_EQ(g, 2u);
  }
  std::remove(DeltaFilePath(dir, 2).c_str());
  std::remove(quarantined[0].c_str());
  std::remove(DeltaFilePath(dir, 4).c_str());
  ::rmdir(dir.c_str());
}

TEST_F(LiveGraphTest, QuarantineReplayMovesWrongStampAside) {
  std::string dir = ::testing::TempDir() + "/openbg_quarantine_stamp";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  UpdateBatch b;
  b.adds.push_back({1, 2, 40});
  ASSERT_TRUE(SaveDeltaBatch(b, 5, DeltaFilePath(dir, 2)).ok());
  ReplayOptions ropts;
  ropts.quarantine_corrupt = true;
  TripleStore store;
  uint64_t gen = 0;
  ASSERT_TRUE(ReplayDeltaDir(dir, 1, &store, &gen, ropts).ok());
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(util::FileExists(DeltaFilePath(dir, 2) + ".quarantine"));
  std::remove((DeltaFilePath(dir, 2) + ".quarantine").c_str());
  ::rmdir(dir.c_str());
}

TEST_F(LiveGraphTest, WrongGenerationStampIsRejected) {
  std::string dir = ::testing::TempDir();
  UpdateBatch b;
  b.adds.push_back({1, 2, 40});
  // File named for generation 2 but stamped 5: replay must refuse rather
  // than apply a batch out of order.
  ASSERT_TRUE(SaveDeltaBatch(b, 5, DeltaFilePath(dir, 2)).ok());
  TripleStore store;
  uint64_t gen = 0;
  EXPECT_FALSE(ReplayDeltaDir(dir, 1, &store, &gen).ok());
  std::remove(DeltaFilePath(dir, 2).c_str());
}

/// The 8-thread MVCC acceptance test (TSan-covered): 7 readers serve
/// queries continuously while 1 writer ingests and publishes delta batches
/// (with background compaction enabled). Each batch replaces entity 60's
/// single fact atomically, so EVERY snapshot any reader ever acquires must
/// show exactly one (60, 2000, *) triple — a torn publish, a non-atomic
/// swap, or a reader observing a half-applied batch all break the count.
TEST_F(LiveGraphTest, ConcurrentReadersDuringIngestAndCompaction) {
  util::ThreadPool pool(2);
  LiveGraph::Options options;
  options.compact_threshold = 16;
  options.pool = &pool;
  auto base = std::make_shared<TripleStore>();
  for (TermId s = 1; s <= 50; ++s) base->Add(s, 1000, 100 + s);
  LiveGraph live(base, options);

  constexpr size_t kReaders = 7;
  constexpr uint64_t kBatches = 150;
  constexpr size_t kReaderIters = 250;
  std::atomic<size_t> errors{0};

  std::vector<std::thread> readers;
  for (size_t ri = 0; ri < kReaders; ++ri) {
    readers.emplace_back([&live, &errors] {
      uint64_t last_gen = 0;
      for (size_t i = 0; i < kReaderIters; ++i) {
        std::shared_ptr<const GraphSnapshot> snap = live.Acquire();
        if (snap->generation < last_gen) errors.fetch_add(1);
        last_gen = snap->generation;
        // The never-touched base fact is visible in every snapshot.
        if (!snap->Contains(1, 1000, 101)) errors.fetch_add(1);
        // Entity 60 holds exactly one fact once the first batch landed.
        size_t n = snap->CountMatches(TriplePattern{60, kAny, kAny});
        if (snap->generation == 1 ? n != 0 : n != 1) errors.fetch_add(1);
      }
    });
  }
  std::thread writer([&live, &errors] {
    for (uint64_t i = 0; i < kBatches; ++i) {
      UpdateBatch batch;
      batch.adds.push_back({60, 2000, static_cast<TermId>(3000 + i)});
      if (i > 0) {
        batch.retracts.push_back({60, 2000, static_cast<TermId>(3000 + i - 1)});
      }
      if (!live.Apply(batch).ok()) errors.fetch_add(1);
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  live.WaitForCompaction();

  EXPECT_EQ(errors.load(), 0u);
  std::shared_ptr<const GraphSnapshot> final_snap = live.Acquire();
  EXPECT_EQ(final_snap->CountMatches(TriplePattern{60, kAny, kAny}), 1u);
  EXPECT_TRUE(
      final_snap->Contains(60, 2000, static_cast<TermId>(3000 + kBatches - 1)));
  EXPECT_EQ(final_snap->size(), 50u + 1u);
}

}  // namespace
}  // namespace openbg::rdf
