// Parallel-trainer suite: deterministic mode must be bit-identical to a
// 1-thread run at any thread count (per-epoch losses AND final parameters),
// Hogwild must still learn, capability fallbacks must preserve the serial
// arithmetic, and checkpoints written mid-run by a parallel trainer must
// resume exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kge/bilinear_models.h"
#include "kge/checkpoint.h"
#include "kge/evaluator.h"
#include "kge/multimodal_models.h"
#include "kge/text_models.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace openbg::kge {
namespace {

// Same deterministic world as kge_test's: relation r maps
// h -> (h + 11*(r+1)) % N, even ids carry images.
Dataset MakeParityDataset(size_t n = 40) {
  Dataset ds;
  ds.name = "parity";
  for (size_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e" + std::to_string(i));
    ds.entity_text.push_back(util::StrFormat("uniq%zu", i));
    if (i % 2 == 0) {
      ds.entity_images.push_back(
          {static_cast<float>(i % 5), static_cast<float>(i % 3), 1.0f,
           static_cast<float>(i) / n});
    } else {
      ds.entity_images.push_back({});
    }
  }
  for (uint32_t r = 0; r < 3; ++r) {
    ds.relation_names.push_back("rel" + std::to_string(r));
  }
  for (uint32_t h = 0; h < n; ++h) {
    for (uint32_t r = 0; r < 3; ++r) {
      ds.train.push_back({h, r, static_cast<uint32_t>((h + 11 * (r + 1)) % n)});
    }
  }
  for (size_t i = 0; i < 15; ++i) ds.dev.push_back(ds.train[i * 3]);
  ds.test = ds.dev;
  return ds;
}

std::vector<std::vector<float>> SnapshotParams(KgeModel* model) {
  std::vector<std::vector<float>> out;
  model->VisitParams([&out](const std::string&, nn::Matrix* m) {
    out.emplace_back(m->data(), m->data() + m->size());
  });
  return out;
}

struct TrainRun {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
};

TrainRun Train(KgeModel* model, const Dataset& ds, TrainConfig config) {
  TrainRun run;
  config.on_epoch = [&run](size_t, double loss) {
    run.epoch_losses.push_back(loss);
  };
  run.final_loss = TrainKgeModel(model, ds, config);
  return run;
}

struct ModelFactory {
  std::string name;
  std::function<std::unique_ptr<KgeModel>(const Dataset&, util::Rng*)> make;
  float lr = 0.05f;
};

// Every checkpointable (VisitParams-bearing) model with deferred-gradient
// support: parity is asserted on raw parameter bytes.
const std::vector<ModelFactory>& CheckpointableFactories() {
  static const std::vector<ModelFactory> factories = {
      {"TransE",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransE>(ds.num_entities(),
                                         ds.num_relations(), 16, 1.0f, rng);
       }},
      {"TransH",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransH>(ds.num_entities(),
                                         ds.num_relations(), 16, 1.0f, rng);
       }},
      {"TransD",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransD>(ds.num_entities(),
                                         ds.num_relations(), 16, 1.0f, rng);
       }},
      {"DistMult",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<DistMult>(ds.num_entities(),
                                           ds.num_relations(), 16, rng);
       },
       0.1f},
      {"ComplEx",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<ComplEx>(ds.num_entities(),
                                          ds.num_relations(), 16, rng);
       },
       0.1f},
  };
  return factories;
}

class DeterministicParityTest : public ::testing::TestWithParam<size_t> {
 protected:
  const ModelFactory& factory() const {
    return CheckpointableFactories()[GetParam()];
  }
};

TEST_P(DeterministicParityTest, ThreadCountDoesNotChangeOneBit) {
  Dataset ds = MakeParityDataset();
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 32;
  config.lr = factory().lr;
  config.seed = 111;
  config.mode = TrainMode::kDeterministic;
  config.round_batches = 3;  // deliberately not a divisor of the batch count

  config.num_threads = 1;
  util::Rng rng1(42);
  auto reference = factory().make(ds, &rng1);
  TrainRun ref_run = Train(reference.get(), ds, config);
  std::vector<std::vector<float>> ref_params = SnapshotParams(reference.get());
  ASSERT_FALSE(ref_params.empty()) << factory().name;
  ASSERT_EQ(ref_run.epoch_losses.size(), config.epochs);

  for (size_t threads : {size_t{3}, size_t{8}}) {
    config.num_threads = threads;
    util::Rng rng(42);
    auto model = factory().make(ds, &rng);
    TrainRun run = Train(model.get(), ds, config);
    // Exact double equality: the per-batch losses are computed from
    // identical round-start parameters and folded in batch order with
    // Neumaier compensation, independent of sharding.
    EXPECT_EQ(ref_run.epoch_losses, run.epoch_losses)
        << factory().name << " threads=" << threads;
    EXPECT_EQ(ref_run.final_loss, run.final_loss)
        << factory().name << " threads=" << threads;
    std::vector<std::vector<float>> params = SnapshotParams(model.get());
    ASSERT_EQ(ref_params.size(), params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(ref_params[i], params[i])
          << factory().name << " threads=" << threads << " param block " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CheckpointableModels, DeterministicParityTest,
    ::testing::Range<size_t>(0, 5),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return CheckpointableFactories()[info.param].name;
    });

// Multimodal models have no VisitParams, so parity is asserted through the
// scoring function over every training triple instead of raw bytes.
TEST(DeterministicParityMultimodalTest, ScoresMatchAtAnyThreadCount) {
  Dataset ds = MakeParityDataset();
  std::vector<ModelFactory> factories = {
      {"TransAE",
       [](const Dataset& ds2, util::Rng* rng) {
         return std::make_unique<TransAeModel>(ds2, 16, 1.0f, 0.01f, rng);
       }},
      {"RSME",
       [](const Dataset& ds2, util::Rng* rng) {
         return std::make_unique<RsmeModel>(ds2, 16, 1.0f, rng);
       },
       0.1f},
      {"MkgFusion",
       [](const Dataset& ds2, util::Rng* rng) {
         return std::make_unique<MkgFusionModel>(ds2, 16, 1.0f, rng, 1 << 12);
       },
       0.1f},
  };
  for (const ModelFactory& factory : factories) {
    TrainConfig config;
    config.epochs = 3;
    config.batch_size = 32;
    config.lr = factory.lr;
    config.seed = 113;
    config.mode = TrainMode::kDeterministic;

    config.num_threads = 1;
    util::Rng rng1(57);
    auto reference = factory.make(ds, &rng1);
    TrainRun ref_run = Train(reference.get(), ds, config);
    reference->PrepareEval();

    config.num_threads = 8;
    util::Rng rng8(57);
    auto parallel = factory.make(ds, &rng8);
    TrainRun par_run = Train(parallel.get(), ds, config);
    parallel->PrepareEval();

    EXPECT_EQ(ref_run.epoch_losses, par_run.epoch_losses) << factory.name;
    for (const LpTriple& t : ds.train) {
      // Bitwise-equal floats, not NEAR: deterministic mode replays the
      // exact same op-log either way.
      EXPECT_EQ(reference->ScoreTriple(t.h, t.r, t.t),
                parallel->ScoreTriple(t.h, t.r, t.t))
          << factory.name << " (" << t.h << "," << t.r << "," << t.t << ")";
    }
  }
}

// Hogwild gives up bit-reproducibility; what it must keep is learning. The
// racing-update run has to improve ranking just like the serial baseline.
TEST(HogwildTest, RacingUpdatesStillLearn) {
  Dataset ds = MakeParityDataset(50);
  util::Rng rng(79);
  TransE model(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);

  RankingEvaluator::Options eopts;
  eopts.filtered = true;
  RankingEvaluator evaluator(ds, eopts);
  RankingMetrics before = evaluator.EvaluateOn(&model, ds.dev);

  TrainConfig config;
  config.epochs = 40;
  config.batch_size = 32;
  config.seed = 101;
  config.num_threads = 4;
  config.mode = TrainMode::kHogwild;
  TrainKgeModel(&model, ds, config);

  RankingMetrics after = evaluator.EvaluateOn(&model, ds.dev);
  EXPECT_GT(after.mrr, before.mrr);
  EXPECT_GE(after.hits10, 0.2);
}

// A model that declares no capabilities must fall back to the serial loop
// under both parallel modes — with arithmetic identical to num_threads=1.
TEST(StrategyFallbackTest, IncapableModelKeepsSerialArithmetic) {
  Dataset ds = MakeParityDataset();
  for (TrainMode mode : {TrainMode::kHogwild, TrainMode::kDeterministic}) {
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 32;
    config.lr = 0.02f;
    config.seed = 131;
    config.mode = mode;

    config.num_threads = 1;
    util::Rng rng1(61);
    TextMatchModel serial(ds, 16, &rng1, 1 << 12);
    TrainRun serial_run = Train(&serial, ds, config);

    config.num_threads = 4;
    util::Rng rng4(61);
    TextMatchModel requested(ds, 16, &rng4, 1 << 12);
    TrainRun fallback_run = Train(&requested, ds, config);

    EXPECT_EQ(serial_run.epoch_losses, fallback_run.epoch_losses)
        << "mode=" << static_cast<int>(mode);
    EXPECT_EQ(serial_run.final_loss, fallback_run.final_loss)
        << "mode=" << static_cast<int>(mode);
  }
}

// TuckER is hogwild-safe but cannot defer its 1-N updates, so a
// deterministic-mode request must serialize — and thus already be
// bit-identical at any thread count.
TEST(StrategyFallbackTest, TuckErDeterministicRequestSerializes) {
  Dataset ds = MakeParityDataset();
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  config.lr = 0.5f;
  config.seed = 137;
  config.mode = TrainMode::kDeterministic;

  config.num_threads = 1;
  util::Rng rng1(67);
  TuckEr serial(ds.num_entities(), ds.num_relations(), 12, 8, &rng1);
  TrainRun serial_run = Train(&serial, ds, config);

  config.num_threads = 8;
  util::Rng rng8(67);
  TuckEr parallel(ds.num_entities(), ds.num_relations(), 12, 8, &rng8);
  TrainRun parallel_run = Train(&parallel, ds, config);

  EXPECT_EQ(serial_run.epoch_losses, parallel_run.epoch_losses);
  EXPECT_EQ(serial_run.final_loss, parallel_run.final_loss);
}

// Crash/resume under the parallel deterministic trainer: interrupting after
// 3 of 6 epochs and resuming on a fresh model must reproduce the
// uninterrupted 6-epoch run bit for bit, at num_threads=4.
TEST(ParallelCheckpointTest, DeterministicResumeIsBitIdentical) {
  Dataset ds = MakeParityDataset();
  std::string path = ::testing::TempDir() + "/openbg_par_det.ckpt";
  std::remove(path.c_str());

  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 32;
  config.lr = 0.05f;
  config.seed = 17;
  config.num_threads = 4;
  config.mode = TrainMode::kDeterministic;

  util::Rng rng_a(99);
  TransE uninterrupted(ds.num_entities(), ds.num_relations(), 16, 1.0f,
                       &rng_a);
  double loss_a = TrainKgeModel(&uninterrupted, ds, config);

  util::Rng rng_b(99);
  TransE crashed(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng_b);
  TrainConfig half = config;
  half.epochs = 3;
  half.checkpoint_path = path;
  TrainKgeModel(&crashed, ds, half);
  ASSERT_TRUE(util::FileExists(path));

  util::Rng rng_c(99);
  TransE resumed(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng_c);
  TrainConfig full = config;
  full.checkpoint_path = path;
  double loss_c = TrainKgeModel(&resumed, ds, full);

  EXPECT_EQ(loss_a, loss_c);
  std::vector<std::vector<float>> pa = SnapshotParams(&uninterrupted);
  std::vector<std::vector<float>> pc = SnapshotParams(&resumed);
  ASSERT_EQ(pa.size(), pc.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pc[i]) << "parameter block " << i << " diverged";
  }
  std::remove(path.c_str());
}

// A Hogwild run's checkpoint persists one RNG stream per worker (racing
// float updates make the *parameters* interleaving-dependent, but the
// sampler streams must still resume exactly). Verify the streams round-trip
// and that a resumed run completes training.
TEST(ParallelCheckpointTest, HogwildCheckpointPersistsWorkerStreams) {
  Dataset ds = MakeParityDataset();
  std::string path = ::testing::TempDir() + "/openbg_par_hog.ckpt";
  std::remove(path.c_str());

  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 32;
  config.lr = 0.05f;
  config.seed = 19;
  config.num_threads = 4;
  config.mode = TrainMode::kHogwild;
  config.checkpoint_path = path;

  util::Rng rng(77);
  TransE model(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  TrainKgeModel(&model, ds, config);
  ASSERT_TRUE(util::FileExists(path));

  TrainerCheckpoint ckpt;
  util::Rng rng2(77);
  TransE probe(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng2);
  ASSERT_TRUE(LoadCheckpoint(path, &probe, &ckpt).ok());
  EXPECT_EQ(ckpt.worker_rngs.size(), config.num_threads);

  // Resume for three more epochs; the run must pick the streams back up and
  // finish without error.
  util::Rng rng3(77);
  TransE resumed(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng3);
  TrainConfig more = config;
  more.epochs = 6;
  double loss = TrainKgeModel(&resumed, ds, more);
  EXPECT_TRUE(std::isfinite(loss));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace openbg::kge
