#include <gtest/gtest.h>

#include "ontology/ontology.h"
#include "ontology/reasoner.h"
#include "ontology/stats.h"
#include "ontology/taxonomy.h"
#include "rdf/graph.h"

namespace openbg::ontology {
namespace {

using rdf::TermId;

class OntologyTest : public ::testing::Test {
 protected:
  OntologyTest() : onto(&graph, /*num_in_market_relations=*/4) {}
  rdf::Graph graph;
  Ontology onto;
};

TEST_F(OntologyTest, CoreKindsClassified) {
  EXPECT_TRUE(IsClassKind(CoreKind::kCategory));
  EXPECT_TRUE(IsClassKind(CoreKind::kBrand));
  EXPECT_TRUE(IsClassKind(CoreKind::kPlace));
  EXPECT_FALSE(IsClassKind(CoreKind::kScene));
  EXPECT_FALSE(IsClassKind(CoreKind::kMarketSegment));
}

TEST_F(OntologyTest, CoreTermsAnchored) {
  const auto& v = graph.vocab;
  for (CoreKind kind : kAllCoreKinds) {
    TermId term = onto.CoreTerm(kind);
    ASSERT_NE(term, rdf::kInvalidTerm);
    if (IsClassKind(kind)) {
      EXPECT_TRUE(graph.store.Contains(term, v.rdfs_sub_class_of,
                                       v.owl_thing))
          << CoreKindName(kind);
    } else {
      EXPECT_TRUE(
          graph.store.Contains(term, v.skos_broader, v.skos_concept))
          << CoreKindName(kind);
    }
  }
}

TEST_F(OntologyTest, ObjectPropertiesHaveDomainAndRange) {
  EXPECT_EQ(onto.in_market().size(), 4u);
  // 6 named + 4 inMarket.
  EXPECT_EQ(onto.object_properties().size(), 10u);
  const auto& v = graph.vocab;
  for (const ObjectPropertySpec& spec : onto.object_properties()) {
    EXPECT_TRUE(graph.store.Contains(spec.property, v.rdfs_domain,
                                     onto.CoreTerm(spec.domain)));
    EXPECT_TRUE(graph.store.Contains(spec.property, v.rdfs_range,
                                     onto.CoreTerm(spec.range)));
    EXPECT_EQ(spec.domain, CoreKind::kCategory)
        << "all Fig. 2 object properties originate at Category";
  }
}

TEST_F(OntologyTest, TaxonomyPropertySelection) {
  EXPECT_EQ(onto.TaxonomyProperty(CoreKind::kBrand),
            graph.vocab.rdfs_sub_class_of);
  EXPECT_EQ(onto.TaxonomyProperty(CoreKind::kCrowd),
            graph.vocab.skos_broader);
}

TEST_F(OntologyTest, AttributePropertyIdempotent) {
  TermId a = onto.AddAttributeProperty("weight");
  TermId b = onto.AddAttributeProperty("weight");
  EXPECT_EQ(a, b);
  EXPECT_EQ(onto.attribute_properties().size(), 1u);
  onto.AddAttributeProperty("color");
  EXPECT_EQ(onto.attribute_properties().size(), 2u);
}

TEST_F(OntologyTest, FindObjectProperty) {
  const ObjectPropertySpec* spec = onto.FindObjectProperty(onto.brand_is());
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->range, CoreKind::kBrand);
  EXPECT_EQ(onto.FindObjectProperty(graph.vocab.rdf_type), nullptr);
}

class TaxonomyTest : public ::testing::Test {
 protected:
  TaxonomyTest() : onto(&graph) {
    // Category -> a -> {b, c}; c -> d.
    root = onto.CoreTerm(CoreKind::kCategory);
    TermId sub = graph.vocab.rdfs_sub_class_of;
    a = graph.dict.AddIri("x/a");
    b = graph.dict.AddIri("x/b");
    c = graph.dict.AddIri("x/c");
    d = graph.dict.AddIri("x/d");
    graph.store.Add(a, sub, root);
    graph.store.Add(b, sub, a);
    graph.store.Add(c, sub, a);
    graph.store.Add(d, sub, c);
  }
  rdf::Graph graph;
  Ontology onto;
  TermId root, a, b, c, d;
};

TEST_F(TaxonomyTest, StructureAndDepths) {
  Taxonomy tax(graph.store, root, graph.vocab.rdfs_sub_class_of);
  EXPECT_EQ(tax.size(), 4u);
  EXPECT_EQ(tax.Depth(a), 1);
  EXPECT_EQ(tax.Depth(b), 2);
  EXPECT_EQ(tax.Depth(d), 3);
  EXPECT_EQ(tax.Depth(root), 0);
  EXPECT_EQ(tax.Depth(graph.vocab.owl_thing), -1);
  EXPECT_EQ(tax.Parent(d), c);
  EXPECT_EQ(tax.Parent(a), root);
  EXPECT_EQ(tax.Parent(root), rdf::kInvalidTerm);
}

TEST_F(TaxonomyTest, LeavesAndLevels) {
  Taxonomy tax(graph.store, root, graph.vocab.rdfs_sub_class_of);
  std::vector<TermId> leaves = tax.Leaves();
  EXPECT_EQ(leaves.size(), 2u);  // b and d
  EXPECT_TRUE(tax.IsLeaf(b));
  EXPECT_FALSE(tax.IsLeaf(c));
  std::vector<size_t> levels = tax.LevelCounts();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], 1u);
  EXPECT_EQ(levels[1], 2u);
  EXPECT_EQ(levels[2], 1u);
}

TEST_F(TaxonomyTest, DescendantsAndAncestry) {
  Taxonomy tax(graph.store, root, graph.vocab.rdfs_sub_class_of);
  std::vector<TermId> desc = tax.Descendants(a);
  EXPECT_EQ(desc.size(), 3u);
  EXPECT_TRUE(tax.IsAncestorOrSelf(a, d));
  EXPECT_TRUE(tax.IsAncestorOrSelf(d, d));
  EXPECT_FALSE(tax.IsAncestorOrSelf(b, d));
}

class ReasonerTest : public ::testing::Test {
 protected:
  ReasonerTest() : onto(&graph) {
    TermId sub = graph.vocab.rdfs_sub_class_of;
    cat = onto.CoreTerm(CoreKind::kCategory);
    brand = onto.CoreTerm(CoreKind::kBrand);
    phone = graph.dict.AddIri("x/phone");
    smartphone = graph.dict.AddIri("x/smartphone");
    apple = graph.dict.AddIri("x/apple");
    item = graph.dict.AddIri("x/iphone14");
    graph.store.Add(phone, sub, cat);
    graph.store.Add(smartphone, sub, phone);
    graph.store.Add(apple, sub, brand);
    graph.store.Add(item, graph.vocab.rdf_type, smartphone);
  }
  rdf::Graph graph;
  Ontology onto;
  TermId cat, brand, phone, smartphone, apple, item;
};

TEST_F(ReasonerTest, TransitiveSubClass) {
  Reasoner r(&graph, &onto);
  EXPECT_TRUE(r.IsSubClassOf(smartphone, cat));
  EXPECT_TRUE(r.IsSubClassOf(smartphone, phone));
  EXPECT_TRUE(r.IsSubClassOf(smartphone, smartphone)) << "reflexive";
  EXPECT_FALSE(r.IsSubClassOf(phone, smartphone));
  EXPECT_FALSE(r.IsSubClassOf(smartphone, brand));
}

TEST_F(ReasonerTest, InstanceTypingThroughClosure) {
  Reasoner r(&graph, &onto);
  EXPECT_TRUE(r.IsInstanceOf(item, smartphone));
  EXPECT_TRUE(r.IsInstanceOf(item, cat));
  EXPECT_FALSE(r.IsInstanceOf(item, brand));
  EXPECT_FALSE(r.IsInstanceOf(apple, cat));
}

TEST_F(ReasonerTest, EquivalenceUnionFind) {
  TermId ext1 = graph.dict.AddIri("ext/1");
  TermId ext2 = graph.dict.AddIri("ext/2");
  graph.store.Add(apple, graph.vocab.owl_equivalent_class, ext1);
  graph.store.Add(ext1, graph.vocab.owl_equivalent_class, ext2);
  Reasoner r(&graph, &onto);
  TermId c1 = r.CanonicalEquivalent(apple);
  EXPECT_EQ(r.CanonicalEquivalent(ext1), c1);
  EXPECT_EQ(r.CanonicalEquivalent(ext2), c1);
  EXPECT_EQ(r.CanonicalEquivalent(phone), phone) << "singleton unchanged";
}

TEST_F(ReasonerTest, DomainRangeValidation) {
  // Valid: item (a Category instance) brandIs apple (a Brand subclass).
  graph.store.Add(item, onto.brand_is(), apple);
  Reasoner r1(&graph, &onto);
  EXPECT_TRUE(r1.ValidateObjectProperties().empty());

  // Violation: brandIs pointing at a literal (the paper's "China as
  // attribute value" defect) and at a Category node.
  graph.store.Add(item, onto.brand_is(), graph.dict.AddLiteral("China"));
  graph.store.Add(item, onto.brand_is(), phone);
  Reasoner r2(&graph, &onto);
  std::vector<Violation> v = r2.ValidateObjectProperties();
  EXPECT_EQ(v.size(), 2u);
}

TEST_F(ReasonerTest, OrphanDetection) {
  Reasoner r1(&graph, &onto);
  EXPECT_TRUE(r1.FindOrphanClasses().empty());
  // "Make Sushi" defined below a class that links to nothing.
  TermId cooking = graph.dict.AddIri("x/cooking");
  TermId sushi = graph.dict.AddIri("x/make_sushi");
  graph.store.Add(sushi, graph.vocab.rdfs_sub_class_of, cooking);
  Reasoner r2(&graph, &onto);
  std::vector<TermId> orphans = r2.FindOrphanClasses();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], sushi);
}

TEST(StatsTest, CountsToyKg) {
  rdf::Graph graph;
  Ontology onto(&graph, 2);
  TermId sub = graph.vocab.rdfs_sub_class_of;
  TermId cat = onto.CoreTerm(CoreKind::kCategory);
  TermId c1 = graph.dict.AddIri("c/1");
  TermId c2 = graph.dict.AddIri("c/2");
  graph.store.Add(c1, sub, cat);
  graph.store.Add(c2, sub, c1);
  TermId scene = onto.CoreTerm(CoreKind::kScene);
  TermId s1 = graph.dict.AddIri("s/1");
  graph.store.Add(s1, graph.vocab.skos_broader, scene);

  TermId item = graph.dict.AddIri("i/1");
  graph.store.Add(item, graph.vocab.rdf_type, c2);
  graph.store.Add(item, onto.related_scene(), s1);

  KgStats stats = ComputeKgStats(graph, onto);
  EXPECT_EQ(stats.num_core_classes, 2u);
  EXPECT_EQ(stats.num_core_concepts, 1u);
  EXPECT_EQ(stats.num_products, 1u);
  EXPECT_EQ(stats.num_entities, 1u);
  EXPECT_EQ(stats.object_property_counts.at("relatedScene"), 1u);
  EXPECT_EQ(stats.meta_property_counts.at("rdf:type"), 1u);
  // Category taxonomy: level1=1, level2=1, leaves=1.
  const TaxonomyStats& cat_stats = stats.taxonomies[0];
  EXPECT_EQ(cat_stats.total, 2u);
  EXPECT_EQ(cat_stats.leaves, 1u);

  std::string report = FormatKgStats(stats, /*paper_reference=*/true);
  EXPECT_NE(report.find("paper"), std::string::npos);
  EXPECT_NE(report.find("Category"), std::string::npos);
}

}  // namespace
}  // namespace openbg::ontology
