#include <gtest/gtest.h>

#include <cstdio>

#include "core/openbg.h"
#include "rdf/ntriples.h"

namespace openbg::core {
namespace {

OpenBG::Options SmallOptions() {
  OpenBG::Options opts;
  opts.world.seed = 19;
  opts.world.scale = 0.08;
  opts.world.num_products = 200;
  return opts;
}

TEST(OpenBgTest, EndToEndBuild) {
  std::unique_ptr<OpenBG> kg = OpenBG::Build(SmallOptions());
  EXPECT_EQ(kg->world().products.size(), 200u);
  EXPECT_GT(kg->graph().store.size(), 2000u);

  ontology::KgStats stats = kg->Stats();
  EXPECT_EQ(stats.num_products, 200u);
  EXPECT_EQ(stats.num_triples, kg->graph().store.size());
  EXPECT_EQ(stats.taxonomies.size(), 8u);
}

TEST(OpenBgTest, BenchmarkFromFacade) {
  std::unique_ptr<OpenBG> kg = OpenBG::Build(SmallOptions());
  bench_builder::BenchmarkSpec spec;
  spec.num_relations = 15;
  spec.dev_size = 50;
  spec.test_size = 50;
  bench_builder::StageReport report;
  bench_builder::Dataset ds = kg->BuildBenchmark(spec, &report);
  EXPECT_GT(ds.train.size(), 100u);
  EXPECT_LE(ds.num_relations(), 15u);
  EXPECT_EQ(report.final_train + report.final_dev + report.final_test,
            report.sampled_triples);
}

TEST(OpenBgTest, ExportImportRoundTrip) {
  std::unique_ptr<OpenBG> kg = OpenBG::Build(SmallOptions());
  std::string path = ::testing::TempDir() + "/openbg_core_export.nt";
  ASSERT_TRUE(kg->ExportNTriples(path).ok());

  rdf::Graph reloaded;
  ASSERT_TRUE(rdf::ReadNTriples(path, &reloaded.dict, &reloaded.store).ok());
  EXPECT_EQ(reloaded.store.size(), kg->graph().store.size());
  std::remove(path.c_str());
}

TEST(OpenBgTest, ReasonerFindsNoViolationsOnCleanBuild) {
  std::unique_ptr<OpenBG> kg = OpenBG::Build(SmallOptions());
  ontology::Reasoner reasoner = kg->MakeReasoner();
  EXPECT_TRUE(reasoner.ValidateObjectProperties().empty());
  EXPECT_TRUE(reasoner.FindOrphanClasses().empty());
}

TEST(OpenBgTest, DeterministicAcrossBuilds) {
  std::unique_ptr<OpenBG> a = OpenBG::Build(SmallOptions());
  std::unique_ptr<OpenBG> b = OpenBG::Build(SmallOptions());
  EXPECT_EQ(a->graph().store.size(), b->graph().store.size());
  ontology::KgStats sa = a->Stats();
  ontology::KgStats sb = b->Stats();
  EXPECT_EQ(sa.object_property_counts, sb.object_property_counts);
  EXPECT_EQ(sa.meta_property_counts, sb.meta_property_counts);
}

}  // namespace
}  // namespace openbg::core
