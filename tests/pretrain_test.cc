#include <gtest/gtest.h>

#include <set>

#include "datagen/world.h"
#include "pretrain/encoder.h"
#include "pretrain/tasks.h"
#include "pretrain/verbalizer.h"
#include "text/tokenizer.h"

namespace openbg::pretrain {
namespace {

const datagen::World& SmallWorld() {
  static const datagen::World* world = [] {
    datagen::WorldSpec spec;
    spec.seed = 23;
    spec.scale = 0.08;
    spec.num_products = 400;
    spec.num_attribute_types = 24;
    return new datagen::World(datagen::GenerateWorld(spec));
  }();
  return *world;
}

TEST(VerbalizerTest, EmitsAttributeAndRelationTokens) {
  const datagen::World& w = SmallWorld();
  KgVerbalizer verb(w);
  std::vector<std::string> toks = verb.Verbalize(0);
  ASSERT_FALSE(toks.empty());
  // The first product's first attribute name must appear (typed form).
  const datagen::Product& p = w.products[0];
  ASSERT_FALSE(p.attributes.empty());
  std::string attr_tok =
      "attr=" + w.attribute_types[p.attributes[0].first].name;
  EXPECT_NE(std::find(toks.begin(), toks.end(), attr_tok), toks.end());
  // Scene links verbalize first (schema-level knowledge leads).
  if (!p.scenes.empty()) {
    EXPECT_EQ(toks[0].rfind("scene=", 0), 0u) << toks[0];
  }
}

TEST(VerbalizerTest, BudgetCaps) {
  KgVerbalizer verb(SmallWorld());
  EXPECT_LE(verb.Verbalize(0, 4).size(), 4u);
  EXPECT_GE(verb.Verbalize(0, 0).size(), verb.Verbalize(0, 4).size());
}

TEST(VerbalizerTest, GazetteerLookups) {
  const datagen::World& w = SmallWorld();
  KgVerbalizer verb(w);
  const datagen::AttributeType& attr = w.attribute_types[0];
  EXPECT_EQ(verb.AttributeNameType(attr.name), 0);
  EXPECT_EQ(verb.ValueAttributeType(attr.values[0]), 0);
  EXPECT_EQ(verb.ValueAttributeType("definitely_not_a_value_xx"), -1);
  EXPECT_TRUE(
      verb.IsKnownEntityName(w.brands.nodes[0].name));
  EXPECT_FALSE(verb.IsKnownEntityName("nonexistent_brandname_zz"));
}

TEST(EncoderTest, KgFillsSecondChannel) {
  const datagen::World& w = SmallWorld();
  PretrainedEncoder no_kg(MplugBaseConfig(), w);
  PretrainedEncoder with_kg(MplugBaseKgConfig(), w);
  EXPECT_EQ(no_kg.rep_dim(), no_kg.dim());
  EXPECT_EQ(with_kg.rep_dim(), 2 * with_kg.dim());
  EncoderFeatures a = no_kg.MakeFeatures(w.products[0].title_tokens, 0);
  EncoderFeatures b = with_kg.MakeFeatures(w.products[0].title_tokens, 0);
  EXPECT_TRUE(a.kg.empty());
  EXPECT_GT(b.kg.size(), 1u) << "+KG must fill the verbalization channel";
  // Without a product index, the kg channel degrades to a sentinel.
  EncoderFeatures c = with_kg.MakeFeatures(w.products[0].title_tokens, -1);
  EXPECT_EQ(c.kg.size(), 1u);
  // Extra caller-supplied KG evidence lands in the kg channel.
  EncoderFeatures d =
      with_kg.MakeFeatures(w.products[0].title_tokens, 0, {"cooc_3"});
  EXPECT_EQ(d.kg.size(), b.kg.size() + 1);
}

TEST(EncoderTest, EmbedRowsAreChannelNormalized) {
  const datagen::World& w = SmallWorld();
  PretrainedEncoder enc(MplugBaseKgConfig(), w);
  std::vector<EncoderFeatures> feats = {
      enc.MakeFeatures(w.products[0].title_tokens, 0),
      enc.MakeFeatures(w.products[1].title_tokens, 1)};
  nn::Matrix x;
  enc.Embed(feats, &x);
  ASSERT_EQ(x.cols(), enc.rep_dim());
  for (size_t i = 0; i < x.rows(); ++i) {
    float n_text = 0.0f, n_kg = 0.0f;
    for (size_t d = 0; d < enc.dim(); ++d) {
      n_text += x(i, d) * x(i, d);
      n_kg += x(i, enc.dim() + d) * x(i, enc.dim() + d);
    }
    EXPECT_NEAR(n_text, 1.0f, 1e-3f);
    EXPECT_NEAR(n_kg, 1.0f, 1e-3f);
  }
}

TEST(EncoderTest, PretrainingMovesEmbeddings) {
  EncoderConfig cfg = MplugBaseConfig();
  cfg.pretrain_epochs = 1;
  PretrainedEncoder enc(cfg, SmallWorld());
  double norm_before = enc.table()->value.SquaredNorm();
  enc.EnsurePretrained();
  double norm_after = enc.table()->value.SquaredNorm();
  EXPECT_NE(norm_before, norm_after);
  // Idempotent.
  enc.EnsurePretrained();
  EXPECT_EQ(enc.table()->value.SquaredNorm(), norm_after);
}

TEST(SplitTest, ProportionsAndDisjoint) {
  TaskSplit split = SplitProducts(SmallWorld(), 0.8, 31);
  size_t total = SmallWorld().products.size();
  EXPECT_EQ(split.train.size() + split.val.size(), total);
  EXPECT_NEAR(static_cast<double>(split.train.size()) / total, 0.8, 0.01);
  std::set<size_t> train_set(split.train.begin(), split.train.end());
  for (size_t v : split.val) EXPECT_FALSE(train_set.count(v));
}

TEST(FewShotTest, AtMostKPerClass) {
  const datagen::World& w = SmallWorld();
  CategoryPredictionTask task(w);
  TaskSplit split = SplitProducts(w, 0.8, 31);
  util::Rng rng(5);
  auto label_of = [&task](size_t i) { return task.LabelOf(i); };
  std::vector<size_t> shots = FewShotSample(split.train, 2, label_of, &rng);
  std::map<uint32_t, size_t> counts;
  for (size_t i : shots) counts[task.LabelOf(i)] += 1;
  for (const auto& [label, n] : counts) EXPECT_LE(n, 2u);
  EXPECT_LT(shots.size(), split.train.size());
}

class TaskSmokeTest : public ::testing::Test {
 protected:
  TaskSmokeTest() : split_(SplitProducts(SmallWorld(), 0.8, 31)) {
    opts_.epochs = 4;
    opts_.lr = 0.1f;
  }
  TaskSplit split_;
  TrainOpts opts_;
};

TEST_F(TaskSmokeTest, CategoryPredictionLearns) {
  const datagen::World& w = SmallWorld();
  CategoryPredictionTask task(w);
  EncoderConfig cfg = MplugBaseKgConfig();
  cfg.pretrain_epochs = 1;
  PretrainedEncoder enc(cfg, w);
  TrainOpts o = opts_;
  o.epochs = 20;
  o.lr = 0.5f;
  double acc = task.Run(&enc, split_.train, split_.val, o);
  double chance = 1.0 / static_cast<double>(task.num_labels());
  EXPECT_GT(acc, 4 * chance) << "accuracy " << acc << " vs chance "
                             << chance;
  EXPECT_LE(acc, 1.0);
}

TEST_F(TaskSmokeTest, KgHelpsCategoryFewShot) {
  const datagen::World& w = SmallWorld();
  CategoryPredictionTask task(w);
  auto label_of = [&task](size_t i) { return task.LabelOf(i); };

  TrainOpts few = opts_;
  few.epochs = 300;       // fine-tune the head to convergence
  few.lr = 1.0f;
  few.batch_size = 1 << 14;     // full-batch: deterministic convergence
  few.update_encoder = false;   // frozen encoder: the k-shot recipe
  double mean_base = 0.0, mean_kg = 0.0;
  const uint64_t shot_seeds[] = {77, 97, 177};
  for (uint64_t seed : shot_seeds) {
    util::Rng rng(seed);
    std::vector<size_t> shots =
        FewShotSample(split_.train, 5, label_of, &rng);
    EncoderConfig base_cfg = MplugBaseConfig();
    base_cfg.pretrain_epochs = 1;
    PretrainedEncoder base(base_cfg, w);
    EncoderConfig kg_cfg = MplugBaseKgConfig();
    kg_cfg.pretrain_epochs = 1;
    PretrainedEncoder kg(kg_cfg, w);
    few.seed = seed;
    mean_base += task.Run(&base, shots, split_.val, few);
    mean_kg += task.Run(&kg, shots, split_.val, few);
  }
  EXPECT_GT(mean_kg / 3.0, mean_base / 3.0)
      << "5-shot (3 seeds): KG-enhanced should beat the plain encoder";
}

TEST_F(TaskSmokeTest, TitleNerLearnsAndKgHelps) {
  const datagen::World& w = SmallWorld();
  TitleNerTask task(w);
  PretrainedEncoder base(MplugBaseConfig(), w);
  PretrainedEncoder kg(MplugBaseKgConfig(), w);
  TrainOpts o = opts_;
  o.epochs = 3;
  // Few-shot slice keeps the CRF training quick and makes the gazetteer
  // signal decisive.
  std::vector<size_t> small_train(split_.train.begin(),
                                  split_.train.begin() + 40);
  PrfMetrics m_base = task.Run(base, small_train, split_.val, o);
  PrfMetrics m_kg = task.Run(kg, small_train, split_.val, o);
  EXPECT_GT(m_kg.f1, 0.3);
  EXPECT_GE(m_kg.f1, m_base.f1);
}

TEST_F(TaskSmokeTest, SummarizationBeatsIdentityBaseline) {
  const datagen::World& w = SmallWorld();
  TitleSummarizationTask task(w);
  PretrainedEncoder enc(MplugBaseKgConfig(), w);
  double rouge = task.Run(enc, split_.train, split_.val, opts_);
  // Identity summary (keep everything) scores the length-ratio penalty.
  double identity = 0.0;
  for (size_t i : split_.val) {
    const datagen::Product& p = w.products[i];
    identity += text::RougeL(p.title_tokens, p.short_title_tokens);
  }
  identity /= static_cast<double>(split_.val.size());
  EXPECT_GT(rouge, identity);
  EXPECT_GT(rouge, 0.6);
}

TEST_F(TaskSmokeTest, ReviewIeKgResolvesMisspellings) {
  const datagen::World& w = SmallWorld();
  ReviewIeTask task(w);
  PretrainedEncoder base(MplugBaseConfig(), w);
  PretrainedEncoder kg(MplugBaseKgConfig(), w);
  TrainOpts o = opts_;
  o.epochs = 3;
  PrfMetrics m_base = task.Run(base, split_.train, split_.val, o);
  PrfMetrics m_kg = task.Run(kg, split_.train, split_.val, o);
  EXPECT_GT(m_kg.f1, 0.5);
  EXPECT_GE(m_kg.recall, m_base.recall)
      << "gazetteer + fuzzy matching should recover misspelled attributes";
}

TEST_F(TaskSmokeTest, SalienceKgBeatsNoKg) {
  const datagen::World& w = SmallWorld();
  SalienceEvaluationTask task(w, /*num_examples=*/400, /*seed=*/41);
  ASSERT_GT(task.num_examples(), 50u);
  EncoderConfig base_cfg = MplugBaseConfig();
  base_cfg.pretrain_epochs = 1;
  EncoderConfig kg_cfg = MplugBaseKgConfig();
  kg_cfg.pretrain_epochs = 1;
  PretrainedEncoder base(base_cfg, w);
  PretrainedEncoder kg(kg_cfg, w);
  TrainOpts o = opts_;
  o.epochs = 60;
  o.lr = 1.0f;
  double acc_base = task.Run(&base, o);
  double acc_kg = task.Run(&kg, o);
  EXPECT_GT(acc_kg, 0.6);
  EXPECT_GE(acc_kg, acc_base);
}

}  // namespace
}  // namespace openbg::pretrain
