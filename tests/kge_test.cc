#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "kge/bilinear_models.h"
#include "kge/evaluator.h"
#include "kge/multimodal_models.h"
#include "kge/negative_sampler.h"
#include "kge/text_models.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "util/string_util.h"

namespace openbg::kge {
namespace {

// A tiny deterministic link-prediction world: N entities, 3 relations,
// relation r maps h -> (h + 11*(r+1)) % N. Entities carry distinctive text
// and (for even ids) an image whose features encode the id, so structure,
// text and image models can all learn it.
Dataset MakeTinyDataset(size_t n = 50) {
  Dataset ds;
  ds.name = "tiny";
  for (size_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e" + std::to_string(i));
    ds.entity_text.push_back(util::StrFormat("uniq%zu", i));
    if (i % 2 == 0) {
      ds.entity_images.push_back(
          {static_cast<float>(i % 5), static_cast<float>(i % 3), 1.0f,
           static_cast<float>(i) / n});
    } else {
      ds.entity_images.push_back({});
    }
  }
  for (uint32_t r = 0; r < 3; ++r) {
    ds.relation_names.push_back("rel" + std::to_string(r));
  }
  for (uint32_t h = 0; h < n; ++h) {
    for (uint32_t r = 0; r < 3; ++r) {
      uint32_t t = (h + 11 * (r + 1)) % n;
      ds.train.push_back({h, r, t});
    }
  }
  // Dev/test duplicate a slice of train (memorization check).
  for (size_t i = 0; i < 20; ++i) ds.dev.push_back(ds.train[i * 3]);
  ds.test = ds.dev;
  return ds;
}

struct ModelFactory {
  std::string name;
  std::function<std::unique_ptr<KgeModel>(const Dataset&, util::Rng*)> make;
  float lr = 0.05f;
  size_t epochs = 40;
};

// Returns a reference to a function-local static: callers keep references
// into the list (see KgeModelTest::factory), so it must outlive them.
const std::vector<ModelFactory>& AllFactories() {
  auto e = [](const Dataset& ds) { return ds.num_entities(); };
  auto r = [](const Dataset& ds) { return ds.num_relations(); };
  static const std::vector<ModelFactory> factories = {
      {"TransE",
       [e, r](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransE>(e(ds), r(ds), 16, 1.0f, rng);
       }},
      {"TransH",
       [e, r](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransH>(e(ds), r(ds), 16, 1.0f, rng);
       }},
      {"TransD",
       [e, r](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransD>(e(ds), r(ds), 16, 1.0f, rng);
       }},
      {"DistMult",
       [e, r](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<DistMult>(e(ds), r(ds), 16, rng);
       },
       0.1f, 80},
      {"ComplEx",
       [e, r](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<ComplEx>(e(ds), r(ds), 16, rng);
       },
       0.1f, 120},
      {"TuckER",
       [e, r](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TuckEr>(e(ds), r(ds), 12, 8, rng);
       }},
      {"TextMatch",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TextMatchModel>(ds, 16, rng, 1 << 12);
       },
       0.02f, 60},
      {"StarStyle",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<StarStyleModel>(ds, 16, rng, 1 << 12);
       }},
      {"GenKgc",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<GenKgcModel>(ds, 32, rng, 1 << 12);
       },
       0.2f, 120},
      {"TransAE",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<TransAeModel>(ds, 16, 1.0f, 0.01f, rng);
       },
       0.05f, 60},
      {"RSME",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<RsmeModel>(ds, 16, 1.0f, rng);
       },
       0.1f, 60},
      {"MkgFusion",
       [](const Dataset& ds, util::Rng* rng) {
         return std::make_unique<MkgFusionModel>(ds, 16, 1.0f, rng, 1 << 12);
       },
       0.1f, 60},
  };
  return factories;
}

class KgeModelTest : public ::testing::TestWithParam<size_t> {
 protected:
  const ModelFactory& factory() const { return AllFactories()[GetParam()]; }
};

TEST_P(KgeModelTest, ScoreTailsAgreesWithScoreTriple) {
  Dataset ds = MakeTinyDataset(20);
  util::Rng rng(71);
  auto model = factory().make(ds, &rng);
  model->PrepareEval();
  std::vector<float> tails;
  model->ScoreTails(3, 1, &tails);
  ASSERT_EQ(tails.size(), ds.num_entities());
  for (uint32_t t = 0; t < ds.num_entities(); ++t) {
    EXPECT_NEAR(tails[t], model->ScoreTriple(3, 1, t), 1e-3f)
        << factory().name << " tail " << t;
  }
}

TEST_P(KgeModelTest, ScoreHeadsCoversAllEntities) {
  Dataset ds = MakeTinyDataset(20);
  util::Rng rng(73);
  auto model = factory().make(ds, &rng);
  model->PrepareEval();
  std::vector<float> heads;
  model->ScoreHeads(1, 5, &heads);
  EXPECT_EQ(heads.size(), ds.num_entities());
}

TEST_P(KgeModelTest, TrainingImprovesRanking) {
  Dataset ds = MakeTinyDataset(50);
  util::Rng rng(79);
  auto model = factory().make(ds, &rng);

  RankingEvaluator::Options eopts;
  eopts.filtered = true;
  RankingEvaluator evaluator(ds, eopts);
  RankingMetrics before = evaluator.EvaluateOn(model.get(), ds.dev);

  TrainConfig config;
  config.epochs = factory().epochs;
  config.batch_size = 32;
  config.lr = factory().lr;
  config.seed = 101;
  TrainKgeModel(model.get(), ds, config);

  RankingMetrics after = evaluator.EvaluateOn(model.get(), ds.dev);
  EXPECT_GT(after.mrr, before.mrr) << factory().name;
  EXPECT_GE(after.hits10, 0.2) << factory().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, KgeModelTest, ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return AllFactories()[info.param].name;
    });

TEST(NegativeSamplerTest, NeverReturnsPositiveWhenFiltering) {
  Dataset ds = MakeTinyDataset(30);
  NegativeSampler::Options opts;
  opts.filter_true = true;
  NegativeSampler sampler(ds, opts, 7);
  for (const LpTriple& pos : ds.train) {
    for (int i = 0; i < 3; ++i) {
      LpTriple neg = sampler.Corrupt(pos);
      EXPECT_NE(neg, pos);
      EXPECT_FALSE(sampler.IsKnownPositive(neg));
    }
  }
}

TEST(NegativeSamplerTest, CorruptsExactlyOneSide) {
  Dataset ds = MakeTinyDataset(30);
  NegativeSampler sampler(ds, {}, 11);
  for (const LpTriple& pos : ds.train) {
    LpTriple neg = sampler.Corrupt(pos);
    bool head_changed = neg.h != pos.h;
    bool tail_changed = neg.t != pos.t;
    EXPECT_NE(head_changed, tail_changed)
        << "exactly one side corrupted";
    EXPECT_EQ(neg.r, pos.r);
  }
}

TEST(NegativeSamplerTest, FallbackNeverReturnsThePositive) {
  // Two entities, one relation, and every possible triple is a known
  // positive, so the filtered retry loop always exhausts max_retries and
  // lands in the fallback. The old fallback re-drew the tail uniformly
  // (50% chance of returning `pos` unchanged) and ignored the head/tail
  // choice entirely.
  Dataset ds;
  for (int i = 0; i < 2; ++i) {
    ds.entity_names.push_back("e" + std::to_string(i));
    ds.entity_text.push_back("t");
    ds.entity_images.push_back({});
  }
  ds.relation_names.push_back("r");
  for (uint32_t h = 0; h < 2; ++h) {
    for (uint32_t t = 0; t < 2; ++t) ds.train.push_back({h, 0, t});
  }
  NegativeSampler::Options opts;
  opts.filter_true = true;
  opts.max_retries = 4;
  NegativeSampler sampler(ds, opts, 17);
  size_t head_side = 0, tail_side = 0;
  for (int i = 0; i < 200; ++i) {
    for (const LpTriple& pos : ds.train) {
      LpTriple neg = sampler.Corrupt(pos);
      ASSERT_NE(neg, pos) << "fallback returned the positive unchanged";
      bool head_changed = neg.h != pos.h;
      bool tail_changed = neg.t != pos.t;
      EXPECT_NE(head_changed, tail_changed) << "exactly one side corrupted";
      EXPECT_EQ(neg.r, pos.r);
      head_changed ? ++head_side : ++tail_side;
    }
  }
  // The fallback honors the (uniform, p = 0.5) side choice: both sides
  // must actually occur.
  EXPECT_GT(head_side, 0u);
  EXPECT_GT(tail_side, 0u);
}

TEST(NegativeSamplerTest, BernoulliSkewsTowardTailForNto1) {
  // Relation 0 is N-to-1 (many heads, one tail). Corrupting the *head*
  // would often create a false negative (many heads are true), so Wang et
  // al.'s bernoulli scheme corrupts the tail most of the time:
  // P(corrupt head) = tph / (tph + hpt) = 1 / (1 + 39).
  Dataset ds;
  ds.name = "n_to_1";
  for (int i = 0; i < 40; ++i) {
    ds.entity_names.push_back("e" + std::to_string(i));
    ds.entity_text.push_back("t");
    ds.entity_images.push_back({});
  }
  ds.relation_names.push_back("r");
  for (uint32_t h = 1; h < 40; ++h) ds.train.push_back({h, 0, 0});
  NegativeSampler::Options opts;
  opts.bernoulli = true;
  opts.filter_true = false;
  NegativeSampler sampler(ds, opts, 13);
  size_t head_corruptions = 0, total = 0;
  for (const LpTriple& pos : ds.train) {
    for (int i = 0; i < 20; ++i) {
      LpTriple neg = sampler.Corrupt(pos);
      if (neg.h != pos.h) ++head_corruptions;
      ++total;
    }
  }
  EXPECT_LT(static_cast<double>(head_corruptions) / total, 0.2);
}

// A fake model whose scores are fully determined: score(h,r,t) = -|t - g|
// where g is the gold tail by construction.
class OracleModel : public KgeModel {
 public:
  OracleModel(size_t n, uint32_t offset)
      : KgeModel(n, 1), offset_(offset) {}
  std::string name() const override { return "Oracle"; }
  float ScoreTriple(uint32_t h, uint32_t, uint32_t t) const override {
    uint32_t gold = (h + offset_) % num_entities_;
    return -std::fabs(static_cast<float>(t) - static_cast<float>(gold));
  }
  double TrainPairs(const std::vector<LpTriple>&,
                    const std::vector<LpTriple>&, float) override {
    return 0.0;
  }

 private:
  uint32_t offset_;
};

TEST(EvaluatorTest, PerfectModelScoresPerfectMetrics) {
  Dataset ds;
  const size_t n = 30;
  for (size_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e");
    ds.entity_text.push_back("t");
    ds.entity_images.push_back({});
  }
  ds.relation_names.push_back("r");
  for (uint32_t h = 0; h < n; ++h) ds.train.push_back({h, 0, static_cast<uint32_t>((h + 5) % n)});
  ds.test = {{0, 0, 5}, {1, 0, 6}, {2, 0, 7}};
  RankingEvaluator eval(ds, {});
  OracleModel model(n, 5);
  RankingMetrics m = eval.Evaluate(&model);
  EXPECT_DOUBLE_EQ(m.hits1, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.mr, 1.0);
  EXPECT_EQ(m.n, 3u);
}

TEST(EvaluatorTest, FilteringRemovesKnownTails) {
  // Two gold tails for (0, r): 5 (train) and 6 (test). The oracle prefers
  // 5, so raw rank of 6 is 2 but filtered rank is 1.
  Dataset ds;
  const size_t n = 10;
  for (size_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e");
    ds.entity_text.push_back("t");
    ds.entity_images.push_back({});
  }
  ds.relation_names.push_back("r");
  ds.train = {{0, 0, 5}};
  ds.test = {{0, 0, 6}};
  OracleModel model(n, 5);  // scores peak at tail 5

  RankingEvaluator::Options raw;
  raw.filtered = false;
  RankingMetrics m_raw = RankingEvaluator(ds, raw).Evaluate(&model);
  EXPECT_DOUBLE_EQ(m_raw.mr, 2.0);

  RankingEvaluator::Options filt;
  filt.filtered = true;
  RankingMetrics m_filt = RankingEvaluator(ds, filt).Evaluate(&model);
  EXPECT_DOUBLE_EQ(m_filt.mr, 1.0);
}

TEST(EvaluatorTest, DuplicateTriplesAcrossSplitsDoNotCorruptRanks) {
  // Regression: (0, r, 5) appears in train, dev AND test. Before the skip
  // lists were deduplicated, RankOf subtracted the outscoring candidate 5
  // once per copy when ranking (0, r, 6), underflowing `better` from 1 to
  // size_t(-2) and reporting a nonsense rank (mr dropped below 1).
  Dataset ds;
  const size_t n = 10;
  for (size_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e");
    ds.entity_text.push_back("t");
    ds.entity_images.push_back({});
  }
  ds.relation_names.push_back("r");
  ds.train = {{0, 0, 5}};
  ds.dev = {{0, 0, 5}};
  ds.test = {{0, 0, 5}, {0, 0, 6}};
  OracleModel model(n, 5);  // scores peak at tail 5

  RankingEvaluator::Options opts;
  opts.filtered = true;
  RankingMetrics m = RankingEvaluator(ds, opts).Evaluate(&model);
  // Gold 5 ranks 1 outright; gold 6 ranks 1 once the known tail 5 is
  // filtered — exactly once despite its three copies.
  EXPECT_EQ(m.n, 2u);
  EXPECT_DOUBLE_EQ(m.mr, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.hits1, 1.0);
}

// All candidates tie: rank must be 1 + #strictly-better = 1 for every
// triple, in serial and parallel runs alike (ties never depend on
// evaluation order or thread count).
class ConstantModel : public KgeModel {
 public:
  explicit ConstantModel(size_t n) : KgeModel(n, 1) {}
  std::string name() const override { return "Constant"; }
  float ScoreTriple(uint32_t, uint32_t, uint32_t) const override {
    return 0.25f;
  }
  double TrainPairs(const std::vector<LpTriple>&,
                    const std::vector<LpTriple>&, float) override {
    return 0.0;
  }
};

TEST(EvaluatorTest, TiedScoresRankDeterministically) {
  Dataset ds = MakeTinyDataset(24);
  ConstantModel model(24);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    RankingEvaluator::Options opts;
    opts.filtered = true;
    opts.num_threads = threads;
    RankingMetrics m = RankingEvaluator(ds, opts).Evaluate(&model);
    EXPECT_DOUBLE_EQ(m.mr, 1.0) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(m.hits1, 1.0) << "threads=" << threads;
  }
}

TEST(EvaluatorTest, ParallelMetricsAreBitIdenticalToSerial) {
  Dataset ds = MakeTinyDataset(50);
  util::Rng rng(83);
  // TransE exercises the plain embedding path; TextMatchModel exercises the
  // Mlp-scored path, which once raced on shared activation caches until
  // scoring switched to Mlp::ForwardInference.
  std::vector<std::unique_ptr<KgeModel>> models;
  models.push_back(std::make_unique<TransE>(ds.num_entities(),
                                            ds.num_relations(), 16, 1.0f,
                                            &rng));
  models.push_back(std::make_unique<TextMatchModel>(ds, 16, &rng, 1 << 12));
  for (auto& model : models) {
    TrainConfig config;
    config.epochs = 5;
    config.batch_size = 32;
    TrainKgeModel(model.get(), ds, config);
    for (bool both : {false, true}) {
      RankingEvaluator::Options serial;
      serial.filtered = true;
      serial.both_directions = both;
      RankingMetrics ms = RankingEvaluator(ds, serial).Evaluate(model.get());
      for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
        RankingEvaluator::Options par = serial;
        par.num_threads = threads;
        RankingMetrics mp = RankingEvaluator(ds, par).Evaluate(model.get());
        EXPECT_EQ(ms.n, mp.n);
        // Bit-identical, not approximately equal: ranks are integers and
        // the metric fold runs serially in triple order at any thread
        // count.
        EXPECT_DOUBLE_EQ(ms.mr, mp.mr)
            << model->name() << " threads=" << threads;
        EXPECT_DOUBLE_EQ(ms.mrr, mp.mrr)
            << model->name() << " threads=" << threads;
        EXPECT_DOUBLE_EQ(ms.hits1, mp.hits1)
            << model->name() << " threads=" << threads;
        EXPECT_DOUBLE_EQ(ms.hits3, mp.hits3)
            << model->name() << " threads=" << threads;
        EXPECT_DOUBLE_EQ(ms.hits10, mp.hits10)
            << model->name() << " threads=" << threads;
      }
    }
  }
}

TEST(EvaluatorTest, QueryBatchedMetricsAreBitIdenticalToPerTriple) {
  // A world built to exercise query dedup: relation 0 maps each head to TWO
  // tails, so the test split repeats (h, r) tail-queries (and, since tails
  // are shared between neighboring heads, (t, r) head-queries too). The
  // batched path must score each unique query once yet reproduce the
  // per-triple reference metrics exactly.
  Dataset ds;
  ds.name = "multi-tail";
  const uint32_t n = 30;
  for (uint32_t i = 0; i < n; ++i) {
    ds.entity_names.push_back("e" + std::to_string(i));
    ds.entity_text.push_back(util::StrFormat("uniq%u", i));
    ds.entity_images.push_back({});
  }
  ds.relation_names.push_back("rel0");
  for (uint32_t h = 0; h < n; ++h) {
    ds.train.push_back({h, 0, (h + 1) % n});
    ds.train.push_back({h, 0, (h + 2) % n});
  }
  for (size_t i = 0; i < 24; ++i) ds.test.push_back(ds.train[i]);
  ds.dev = ds.test;

  util::Rng rng(97);
  TransE model(ds.num_entities(), ds.num_relations(), 16, 1.0f, &rng);
  TrainConfig config;
  config.epochs = 5;
  config.batch_size = 16;
  TrainKgeModel(&model, ds, config);

  for (bool both : {false, true}) {
    RankingEvaluator::Options per_triple;
    per_triple.filtered = true;
    per_triple.both_directions = both;
    per_triple.query_batched = false;
    RankingMetrics ref = RankingEvaluator(ds, per_triple).Evaluate(&model);
    for (size_t threads : {size_t{1}, size_t{8}}) {
      RankingEvaluator::Options batched = per_triple;
      batched.query_batched = true;
      batched.num_threads = threads;
      RankingMetrics got = RankingEvaluator(ds, batched).Evaluate(&model);
      EXPECT_EQ(ref.n, got.n) << "threads=" << threads;
      // Exactly equal, not approximately: both paths compute the same
      // integer ranks and fold them in the same (triple) order.
      EXPECT_DOUBLE_EQ(ref.mr, got.mr) << "both=" << both
                                       << " threads=" << threads;
      EXPECT_DOUBLE_EQ(ref.mrr, got.mrr) << "both=" << both
                                         << " threads=" << threads;
      EXPECT_DOUBLE_EQ(ref.hits1, got.hits1) << "both=" << both
                                             << " threads=" << threads;
      EXPECT_DOUBLE_EQ(ref.hits3, got.hits3) << "both=" << both
                                             << " threads=" << threads;
      EXPECT_DOUBLE_EQ(ref.hits10, got.hits10) << "both=" << both
                                               << " threads=" << threads;
    }
  }
}

TEST(EvaluatorTest, MaxTriplesCapsWork) {
  Dataset ds = MakeTinyDataset(20);
  RankingEvaluator::Options opts;
  opts.max_triples = 5;
  RankingEvaluator eval(ds, opts);
  OracleModel model(20, 11);
  RankingMetrics m = eval.Evaluate(&model);
  EXPECT_EQ(m.n, 5u);
}

TEST(EvaluatorTest, BothDirectionsDoublesCount) {
  Dataset ds = MakeTinyDataset(20);
  RankingEvaluator::Options opts;
  opts.both_directions = true;
  opts.max_triples = 4;
  RankingEvaluator eval(ds, opts);
  OracleModel model(20, 11);
  RankingMetrics m = eval.Evaluate(&model);
  EXPECT_EQ(m.n, 8u);
}

}  // namespace
}  // namespace openbg::kge
