// Tests for serve::CanaryController: deterministic mirror sampling,
// rank-agreement accounting, and — the load-bearing part — that promote
// and rollback ride the PR 7 reload seam exactly: generation bumps are
// monotonic and promote-only, the cache retires on promote and survives
// rollback, and a stale ANN index never scores a newly promoted model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/openbg.h"
#include "kge/checkpoint.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "serve/canary.h"
#include "serve/engine.h"
#include "util/fault_injection.h"

namespace openbg::serve {
namespace {

class CanaryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::OpenBG::Options options;
    options.world.seed = 21;
    options.world.scale = 0.25;
    options.world.num_products = 300;
    kg_ = core::OpenBG::Build(options).release();

    bench_builder::BenchmarkSpec spec;
    spec.name = "canary-test";
    spec.num_relations = 12;
    spec.dev_size = 40;
    spec.test_size = 80;
    ds_ = new kge::Dataset(kg_->BuildBenchmark(spec, nullptr));

    util::Rng rng(5);
    model_ = new kge::TransE(ds_->num_entities(), ds_->num_relations(), 16,
                             1.0f, &rng);
    kge::TrainConfig config;
    config.epochs = 2;
    config.batch_size = 256;
    TrainKgeModel(model_, *ds_, config);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete ds_;
    delete kg_;
    model_ = nullptr;
    ds_ = nullptr;
    kg_ = nullptr;
  }

  void TearDown() override { util::failpoints::DisarmAll(); }

  ServeContext::Bindings Bindings() {
    ServeContext::Bindings b;
    b.graph = &kg_->graph();
    b.ontology = &kg_->ontology();
    b.dataset = ds_;
    b.model = model_;
    return b;
  }

  /// A parameter-identical copy of the serving model, via checkpoint
  /// round-trip (TransE has no public copy path; the checkpoint is the
  /// supported way to materialize "the same weights elsewhere").
  static std::shared_ptr<kge::TransE> CloneServingModel() {
    std::string path = ::testing::TempDir() + "/canary_clone.obgckpt";
    kge::TrainerCheckpoint ckpt;
    ckpt.model_name = model_->name();
    EXPECT_TRUE(kge::SaveCheckpoint(ckpt, model_, path).ok());
    util::Rng rng(77);
    auto clone = std::make_shared<kge::TransE>(
        ds_->num_entities(), ds_->num_relations(), 16, 1.0f, &rng);
    kge::TrainerCheckpoint loaded;
    EXPECT_TRUE(kge::LoadCheckpoint(path, clone.get(), &loaded).ok());
    std::remove(path.c_str());
    return clone;
  }

  /// A shape-compatible but differently-initialized (untrained) model:
  /// its top-k answers should share almost nothing with the trained one.
  static std::shared_ptr<kge::TransE> DivergentModel() {
    util::Rng rng(991);
    return std::make_shared<kge::TransE>(
        ds_->num_entities(), ds_->num_relations(), 16, 1.0f, &rng);
  }

  /// Reference top-k under the canonical total order.
  static std::vector<ScoredEntity> Reference(kge::KgeModel* m, uint32_t h,
                                             uint32_t r, size_t k) {
    std::vector<float> scores;
    m->ScoreTails(h, r, &scores);
    return SelectTopK(scores, k);
  }

  /// Drives `n` engine queries through the controller the way the net
  /// server does: primary answer first, then Observe.
  static void Drive(QueryEngine* engine, CanaryController* canary,
                    size_t n, size_t k = 10) {
    for (size_t i = 0; i < n; ++i) {
      const kge::LpTriple& q = ds_->test[i % ds_->test.size()];
      Response resp = engine->LinkPredictTopK(q.h, q.r, k);
      ASSERT_EQ(resp.status, ServeStatus::kOk);
      canary->Observe(q.h, q.r, k, resp.payload.topk, 10.0);
    }
  }

  static core::OpenBG* kg_;
  static kge::Dataset* ds_;
  static kge::TransE* model_;
};

core::OpenBG* CanaryTest::kg_ = nullptr;
kge::Dataset* CanaryTest::ds_ = nullptr;
kge::TransE* CanaryTest::model_ = nullptr;

TEST_F(CanaryTest, BeginValidatesCandidate) {
  ServeContext ctx(Bindings());
  CanaryController canary(&ctx);
  EXPECT_FALSE(canary.Begin(nullptr).ok());

  util::Rng rng(1);
  auto wrong_shape = std::make_shared<kge::TransE>(
      ds_->num_entities() + 7, ds_->num_relations(), 16, 1.0f, &rng);
  EXPECT_FALSE(canary.Begin(wrong_shape).ok());

  EXPECT_TRUE(canary.Begin(CloneServingModel()).ok());
  EXPECT_EQ(canary.state(), CanaryController::State::kMirroring);
  // A second Begin while mirroring is refused — one canary at a time.
  EXPECT_FALSE(canary.Begin(CloneServingModel()).ok());
}

TEST_F(CanaryTest, MirrorSamplingIsDeterministic) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  CanaryOptions opts;
  opts.mirror_fraction = 0.3;
  opts.seed = 42;

  uint64_t mirrored[2];
  for (int run = 0; run < 2; ++run) {
    CanaryController canary(&ctx, opts);
    ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
    Drive(&engine, &canary, 200);
    CanaryController::Stats s = canary.stats();
    EXPECT_EQ(s.observed, 200u);
    mirrored[run] = s.mirrored;
    EXPECT_TRUE(canary.Rollback().ok());
  }
  // Same seed, same observation sequence => the exact same sample set.
  EXPECT_EQ(mirrored[0], mirrored[1]);
  EXPECT_GT(mirrored[0], 0u);
  EXPECT_LT(mirrored[0], 200u);

  // Boundary fractions: 1.0 mirrors everything, 0.0 nothing.
  opts.mirror_fraction = 1.0;
  CanaryController all(&ctx, opts);
  ASSERT_TRUE(all.Begin(CloneServingModel()).ok());
  Drive(&engine, &all, 50);
  EXPECT_EQ(all.stats().mirrored, 50u);
  EXPECT_TRUE(all.Rollback().ok());

  opts.mirror_fraction = 0.0;
  CanaryController none(&ctx, opts);
  ASSERT_TRUE(none.Begin(CloneServingModel()).ok());
  Drive(&engine, &none, 50);
  EXPECT_EQ(none.stats().mirrored, 0u);
}

TEST_F(CanaryTest, IdenticalCloneScoresPerfectAgreement) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  CanaryController canary(&ctx, opts);
  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  Drive(&engine, &canary, 60);
  CanaryController::Stats s = canary.stats();
  EXPECT_EQ(s.mirrored, 60u);
  EXPECT_DOUBLE_EQ(s.mean_agreement, 1.0);
  EXPECT_GT(s.candidate_mean_us, 0.0);
  EXPECT_GT(s.primary_mean_us, 0.0);
}

TEST_F(CanaryTest, PromotePublishesCandidateAndRetiresCache) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  auto candidate = DivergentModel();
  candidate->PrepareEval();
  const kge::LpTriple& q = ds_->test[3];

  // Warm the cache under generation N.
  Response warm = engine.LinkPredictTopK(q.h, q.r, 10);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  EXPECT_TRUE(engine.LinkPredictTopK(q.h, q.r, 10).from_cache);
  const uint64_t gen_before = ctx.generation();

  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  CanaryController canary(&ctx, opts);
  ASSERT_TRUE(canary.Begin(candidate).ok());
  // While mirroring, served answers still come from generation N.
  Response mirrored = engine.LinkPredictTopK(q.h, q.r, 10);
  EXPECT_EQ(mirrored.payload.topk, warm.payload.topk);
  EXPECT_EQ(ctx.generation(), gen_before);

  ASSERT_TRUE(canary.Promote().ok());
  EXPECT_EQ(canary.state(), CanaryController::State::kPromoted);
  EXPECT_EQ(canary.candidate(), nullptr);
  EXPECT_EQ(ctx.generation(), gen_before + 1);
  EXPECT_EQ(ctx.model_ref().get(), candidate.get());

  // The warmed entry is stale: the next answer recomputes against the
  // promoted parameters and matches the candidate's reference answer.
  Response after = engine.LinkPredictTopK(q.h, q.r, 10);
  ASSERT_EQ(after.status, ServeStatus::kOk);
  EXPECT_FALSE(after.from_cache);
  EXPECT_EQ(after.payload.topk, Reference(candidate.get(), q.h, q.r, 10));

  // Promote is terminal for this cycle.
  EXPECT_FALSE(canary.Promote().ok());
  EXPECT_FALSE(canary.Rollback().ok());

  // Restore the suite-shared serving model for later tests.
  ctx.ReloadModel(model_);
}

TEST_F(CanaryTest, RollbackLeavesGenerationAndCacheIntact) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& q = ds_->test[7];
  Response warm = engine.LinkPredictTopK(q.h, q.r, 10);
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  const uint64_t gen_before = ctx.generation();

  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  CanaryController canary(&ctx, opts);
  ASSERT_TRUE(canary.Begin(DivergentModel()).ok());
  Drive(&engine, &canary, 20);
  ASSERT_TRUE(canary.Rollback().ok());

  EXPECT_EQ(canary.state(), CanaryController::State::kRolledBack);
  EXPECT_EQ(canary.candidate(), nullptr);
  EXPECT_EQ(ctx.generation(), gen_before) << "rollback must not bump";
  EXPECT_EQ(ctx.model_ref().get(), model_);
  // The pre-canary cache entry is still valid and still serves.
  Response hit = engine.LinkPredictTopK(q.h, q.r, 10);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(hit.payload.topk, warm.payload.topk);
}

TEST_F(CanaryTest, AutoDecidePromotesAgreeingCandidate) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  opts.min_samples = 30;
  opts.promote_agreement = 0.9;
  opts.auto_decide = true;
  CanaryController canary(&ctx, opts);
  const uint64_t gen_before = ctx.generation();
  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  Drive(&engine, &canary, 40);
  EXPECT_EQ(canary.state(), CanaryController::State::kPromoted);
  EXPECT_EQ(ctx.generation(), gen_before + 1);
  ctx.ReloadModel(model_);
}

TEST_F(CanaryTest, AutoDecideRollsBackDivergentCandidate) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  opts.min_samples = 30;
  opts.promote_agreement = 0.9;
  opts.auto_decide = true;
  CanaryController canary(&ctx, opts);
  const uint64_t gen_before = ctx.generation();
  ASSERT_TRUE(canary.Begin(DivergentModel()).ok());
  Drive(&engine, &canary, 40);
  EXPECT_EQ(canary.state(), CanaryController::State::kRolledBack);
  EXPECT_EQ(ctx.generation(), gen_before);
  EXPECT_LT(canary.stats().mean_agreement, 0.9);
}

TEST_F(CanaryTest, PromotedModelIsNeverScoredByStaleAnnIndex) {
  // ANN enabled: the context builds a TailIndex stamped for generation N.
  // Promotion bumps to N+1 and retires it; until the background rebuild
  // lands, queries must fall back to the exact scan, and once it lands it
  // must be a CANDIDATE-built index. Either way, every returned score
  // must be the candidate's score for that (h, r, id) — a stale index
  // scoring the new model (or vice versa) surfaces as a score from the
  // wrong embedding table.
  ServeContext::Bindings b = Bindings();
  b.ann_enabled = true;
  b.ann.num_clusters = 8;
  b.ann.nprobe = 2;  // intentionally lossy: stale-index reuse would show
  ServeContext ctx(b);
  QueryEngine engine(&ctx, EngineOptions{});
  auto candidate = DivergentModel();
  candidate->PrepareEval();

  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  CanaryController canary(&ctx, opts);
  ASSERT_TRUE(canary.Begin(candidate).ok());
  Drive(&engine, &canary, 10);

  const kge::LpTriple& probe = ds_->test[0];
  std::vector<ScoredEntity> before_promote =
      Reference(model_, probe.h, probe.r, 10);

  ASSERT_TRUE(canary.Promote().ok());

  for (size_t i = 0; i < 20; ++i) {
    const kge::LpTriple& q = ds_->test[i];
    Response resp = engine.LinkPredictTopK(q.h, q.r, 10);
    ASSERT_EQ(resp.status, ServeStatus::kOk);
    for (const ScoredEntity& e : resp.payload.topk) {
      EXPECT_FLOAT_EQ(e.score, candidate->ScoreTriple(q.h, q.r, e.id))
          << "query " << i << ": score from the wrong model generation";
    }
  }
  // The very first exact-fallback answer equals the candidate reference
  // (no index existed for generation N+1 at that instant) — and in
  // particular is NOT the old model's answer.
  Response first = engine.LinkPredictTopK(probe.h, probe.r, 10);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_NE(first.payload.topk, before_promote);
  ctx.ReloadModel(model_);
}

TEST_F(CanaryTest, GenerationIsMonotonicAcrossCanaryCycles) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  CanaryController canary(&ctx, opts);

  uint64_t gen = ctx.generation();
  // rollback -> promote -> rollback -> promote: generation moves only on
  // promote, by exactly one, never backwards.
  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  Drive(&engine, &canary, 5);
  ASSERT_TRUE(canary.Rollback().ok());
  EXPECT_EQ(ctx.generation(), gen);

  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  ASSERT_TRUE(canary.Promote().ok());
  EXPECT_EQ(ctx.generation(), gen + 1);

  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  ASSERT_TRUE(canary.Rollback().ok());
  EXPECT_EQ(ctx.generation(), gen + 1);

  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  ASSERT_TRUE(canary.Promote().ok());
  EXPECT_EQ(ctx.generation(), gen + 2);

  CanaryController::Stats s = canary.stats();
  EXPECT_EQ(s.promotions, 2u);
  EXPECT_EQ(s.rollbacks, 2u);
  ctx.ReloadModel(model_);
}

TEST_F(CanaryTest, MetricsJsonCarriesStateAndCounters) {
  ServeContext ctx(Bindings());
  QueryEngine engine(&ctx, EngineOptions{});
  CanaryOptions opts;
  opts.mirror_fraction = 1.0;
  CanaryController canary(&ctx, opts);
  ASSERT_TRUE(canary.Begin(CloneServingModel()).ok());
  Drive(&engine, &canary, 10);
  std::string json = canary.MetricsJson();
  EXPECT_NE(json.find("\"state\":\"mirroring\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mirrored\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_agreement\":1.0000"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace openbg::serve
