#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "bench_builder/benchmark_builder.h"
#include "bench_builder/dataset.h"
#include "core/openbg.h"

namespace openbg::bench_builder {
namespace {

class BenchBuilderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::OpenBG::Options opts;
    opts.world.seed = 13;
    opts.world.scale = 0.15;
    opts.world.num_products = 600;
    kg_ = core::OpenBG::Build(opts).release();
  }
  static void TearDownTestSuite() {
    delete kg_;
    kg_ = nullptr;
  }

  static core::OpenBG* kg_;
};

core::OpenBG* BenchBuilderTest::kg_ = nullptr;

BenchmarkSpec SmallSpec() {
  BenchmarkSpec spec;
  spec.name = "test500";
  spec.num_relations = 20;
  spec.dev_size = 100;
  spec.test_size = 100;
  return spec;
}

TEST_F(BenchBuilderTest, BuildsNonEmptyDataset) {
  StageReport report;
  Dataset ds = kg_->BuildBenchmark(SmallSpec(), &report);
  EXPECT_GT(ds.num_entities(), 100u);
  EXPECT_LE(ds.num_relations(), 20u);
  EXPECT_GT(ds.train.size(), 500u);
  EXPECT_GT(ds.dev.size(), 0u);
  EXPECT_GT(ds.test.size(), 0u);
  EXPECT_EQ(report.final_train, ds.train.size());
  EXPECT_GT(report.candidate_triples, report.sampled_triples / 2);
  EXPECT_GE(report.relations_before, report.relations_after);
}

TEST_F(BenchBuilderTest, TripleIdsInRange) {
  Dataset ds = kg_->BuildBenchmark(SmallSpec(), nullptr);
  for (const auto* split : {&ds.train, &ds.dev, &ds.test}) {
    for (const LpTriple& t : *split) {
      ASSERT_LT(t.h, ds.num_entities());
      ASSERT_LT(t.t, ds.num_entities());
      ASSERT_LT(t.r, ds.num_relations());
    }
  }
  EXPECT_EQ(ds.entity_text.size(), ds.num_entities());
  EXPECT_EQ(ds.entity_images.size(), ds.num_entities());
}

TEST_F(BenchBuilderTest, EvalEntitiesAppearInTrain) {
  Dataset ds = kg_->BuildBenchmark(SmallSpec(), nullptr);
  std::set<uint32_t> train_entities, train_relations;
  for (const LpTriple& t : ds.train) {
    train_entities.insert(t.h);
    train_entities.insert(t.t);
    train_relations.insert(t.r);
  }
  for (const auto* split : {&ds.dev, &ds.test}) {
    for (const LpTriple& t : *split) {
      EXPECT_TRUE(train_entities.count(t.h));
      EXPECT_TRUE(train_entities.count(t.t));
      EXPECT_TRUE(train_relations.count(t.r));
    }
  }
}

TEST_F(BenchBuilderTest, ImgVariantHeadsAllHaveImages) {
  BenchmarkSpec spec = SmallSpec();
  spec.name = "test_img";
  spec.require_image = true;
  Dataset ds = kg_->BuildBenchmark(spec, nullptr);
  ASSERT_GT(ds.train.size(), 0u);
  for (const LpTriple& t : ds.train) {
    EXPECT_FALSE(ds.entity_images[t.h].empty())
        << "IMG benchmark head entity without image";
  }
  EXPECT_GT(ds.num_multimodal_entities(), 0u);
  EXPECT_LT(ds.num_multimodal_entities(), ds.num_entities())
      << "tails (values/classes) have no images, like the real OpenBG-IMG";
}

TEST_F(BenchBuilderTest, ImgVariantHasFewerRelations) {
  BenchmarkSpec full = SmallSpec();
  full.num_relations = 40;
  BenchmarkSpec img = full;
  img.require_image = true;
  img.name = "img";
  StageReport r_full, r_img;
  Dataset a = kg_->BuildBenchmark(full, &r_full);
  Dataset b = kg_->BuildBenchmark(img, &r_img);
  EXPECT_LE(b.train.size(), a.train.size());
}

TEST_F(BenchBuilderTest, SamplingRatesShrinkDataset) {
  BenchmarkSpec dense = SmallSpec();
  dense.alpha_head = 1.0;
  dense.alpha_tail = 1.0;
  dense.alpha_triple = 1.0;
  BenchmarkSpec sparse = SmallSpec();
  sparse.alpha_head = 0.5;
  sparse.alpha_tail = 0.2;
  sparse.alpha_triple = 0.5;
  Dataset a = kg_->BuildBenchmark(dense, nullptr);
  Dataset b = kg_->BuildBenchmark(sparse, nullptr);
  size_t a_total = a.train.size() + a.dev.size() + a.test.size();
  size_t b_total = b.train.size() + b.dev.size() + b.test.size();
  EXPECT_LT(b_total, a_total / 2);
}

TEST_F(BenchBuilderTest, DeterministicForSeed) {
  Dataset a = kg_->BuildBenchmark(SmallSpec(), nullptr);
  Dataset b = kg_->BuildBenchmark(SmallSpec(), nullptr);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i], b.train[i]);
  }
}

TEST_F(BenchBuilderTest, RelationDistributionLongTail) {
  Dataset ds = kg_->BuildBenchmark(SmallSpec(), nullptr);
  auto dist = RelationDistribution(ds);
  ASSERT_GT(dist.size(), 3u);
  EXPECT_GE(dist.front().second, dist.back().second);
  EXPECT_GT(dist.front().second, dist.back().second * 3)
      << "head relation should dominate the tail (Fig. 5 shape)";
  // Sorted descending.
  for (size_t i = 1; i < dist.size(); ++i) {
    EXPECT_GE(dist[i - 1].second, dist[i].second);
  }
}

TEST_F(BenchBuilderTest, WriteToProducesFiles) {
  Dataset ds = kg_->BuildBenchmark(SmallSpec(), nullptr);
  std::string dir = ::testing::TempDir() + "/openbg_bench_test";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(ds.WriteTo(dir).ok());
  for (const char* suffix :
       {"_train.tsv", "_dev.tsv", "_test.tsv", "_entities.tsv",
        "_relations.tsv"}) {
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/" + ds.name + suffix))
        << suffix;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace openbg::bench_builder
