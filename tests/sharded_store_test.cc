// Out-of-core store suite (PR 9): the OBGSNAP2 sharded store must be
// byte-identical to the in-memory TripleStore on every query surface
// (match sets, iteration order, ScanCost), must fail closed under
// systematic truncation/bit-flip corruption in both verify modes, and must
// slot under LiveGraph and QueryEngine unmodified. Also covers the
// streaming SnapshotReader (bounded-memory validation, on-demand section
// loads) and the MemoryUsage accounting the serve metrics surface.

#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "rdf/delta_segment.h"
#include "rdf/graph.h"
#include "rdf/live_graph.h"
#include "rdf/segment_codec.h"
#include "rdf/sharded_store.h"
#include "rdf/triple_store.h"
#include "serve/engine.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/mapped_file.h"
#include "util/rng.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"

namespace openbg {
namespace {

using rdf::ShardedBuildOptions;
using rdf::ShardedOpenOptions;
using rdf::ShardedStore;
using rdf::ShardedStoreBuilder;
using rdf::Triple;
using rdf::TriplePattern;
using rdf::TripleStore;

constexpr rdf::TermId kAny = TriplePattern::kAny;

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Removes every regular file in `dir`, then the directory itself. Test
// stores are flat directories (manifest + shard files), so one level is
// enough.
void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  RemoveTree(dir);
  return dir;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name != "." && name != "..") out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

// A random graph with deliberately small term ranges so subjects repeat,
// predicates are dense, and (s, o) pairs collide across predicates — the
// shapes that exercise multi-key blocks and the OSP index.
void FillRandomGraph(util::Rng* rng, size_t n, uint64_t s_range,
                     uint64_t p_range, uint64_t o_range, TripleStore* store) {
  for (size_t i = 0; i < n; ++i) {
    store->Add(static_cast<rdf::TermId>(rng->Uniform(s_range)),
               static_cast<rdf::TermId>(rng->Uniform(p_range)),
               static_cast<rdf::TermId>(rng->Uniform(o_range)));
  }
}

std::shared_ptr<const ShardedStore> BuildAndOpen(
    const TripleStore& store, const std::string& dir,
    ShardedBuildOptions build = {}, ShardedOpenOptions open = {}) {
  EXPECT_TRUE(rdf::BuildShardedStore(store, dir, build).ok());
  auto result = ShardedStore::Open(dir, open);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.ok() ? result.value() : nullptr;
}

// The eight bound/unbound shapes a pattern can take, instantiated from one
// probe triple.
std::vector<TriplePattern> PatternShapes(const Triple& t) {
  return {{t.s, t.p, t.o}, {t.s, t.p, kAny}, {t.s, kAny, t.o},
          {kAny, t.p, t.o}, {t.s, kAny, kAny}, {kAny, t.p, kAny},
          {kAny, kAny, t.o}, {kAny, kAny, kAny}};
}

bool SpoLess(const Triple& a, const Triple& b) {
  if (a.s != b.s) return a.s < b.s;
  if (a.p != b.p) return a.p < b.p;
  return a.o < b.o;
}

// Asserts every query surface agrees between the in-memory store and the
// sharded store for `pattern`. The fully unbound pattern is the documented
// deviation: the sharded store iterates global SPO order (no insertion
// log), so only the *set* must match there — plus the sharded order itself
// must actually be sorted SPO.
void ExpectPatternParity(const TripleStore& mem, const ShardedStore& sharded,
                         const TriplePattern& pattern) {
  const bool unbound =
      pattern.s == kAny && pattern.p == kAny && pattern.o == kAny;
  std::vector<Triple> want = mem.Match(pattern);
  std::vector<Triple> got = sharded.Match(pattern);
  if (unbound) {
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end(), SpoLess));
    std::sort(want.begin(), want.end(), SpoLess);
  }
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got, want);
  EXPECT_EQ(sharded.CountMatches(pattern), mem.CountMatches(pattern));
  EXPECT_EQ(sharded.ScanCost(pattern), mem.ScanCost(pattern))
      << "pattern (" << pattern.s << "," << pattern.p << "," << pattern.o
      << ")";
}

// ------------------------------------------------------------ parity suite

TEST(ShardedStoreTest, EmptyStoreRoundTrips) {
  std::string dir = FreshDir("obgs2_empty");
  TripleStore mem;
  auto store = BuildAndOpen(mem, dir, {.num_shards = 4});
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->num_shards(), 4u);
  EXPECT_TRUE(store->ok());
  EXPECT_TRUE(store->Match({kAny, kAny, kAny}).empty());
  EXPECT_EQ(store->ScanCost({kAny, kAny, kAny}), 0u);
  EXPECT_FALSE(store->Contains(1, 2, 3));
  EXPECT_TRUE(store->DistinctPredicates().empty());
  RemoveTree(dir);
}

TEST(ShardedStoreTest, ParityOnRandomizedGraphs) {
  struct Config {
    uint64_t seed;
    size_t triples;
    uint32_t shards;
    size_t block_size;
  };
  // Shard counts around 1 (degenerate), block sizes small enough that
  // every segment spans several blocks, and one default-sized control.
  const Config configs[] = {
      {11, 500, 1, 4},   {22, 2000, 3, 16}, {33, 2000, 8, 8},
      {44, 1500, 5, 1024},
  };
  for (const Config& cfg : configs) {
    SCOPED_TRACE(::testing::Message() << "seed " << cfg.seed << " shards "
                                      << cfg.shards << " block "
                                      << cfg.block_size);
    std::string dir = FreshDir("obgs2_parity");
    util::Rng rng(cfg.seed);
    TripleStore mem;
    FillRandomGraph(&rng, cfg.triples, 60, 8, 40, &mem);
    util::ThreadPool pool(2);
    auto store = BuildAndOpen(
        mem, dir, {.num_shards = cfg.shards, .block_size = cfg.block_size},
        {.verify = ShardedOpenOptions::Verify::kEager, .pool = &pool});
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->size(), mem.size());

    // Probe with present triples and with perturbed (mostly absent) ones.
    for (size_t i = 0; i < 20; ++i) {
      Triple probe = mem.triples()[rng.Uniform(mem.triples().size())];
      if (i % 3 == 1) probe.o = static_cast<rdf::TermId>(rng.Uniform(100));
      if (i % 3 == 2) probe.s = static_cast<rdf::TermId>(rng.Uniform(100));
      EXPECT_EQ(store->Contains(probe.s, probe.p, probe.o),
                mem.Contains(probe.s, probe.p, probe.o));
      for (const TriplePattern& pattern : PatternShapes(probe)) {
        ExpectPatternParity(mem, *store, pattern);
      }
      EXPECT_EQ(store->Objects(probe.s, probe.p), mem.Objects(probe.s, probe.p));
      EXPECT_EQ(store->Subjects(probe.p, probe.o),
                mem.Subjects(probe.p, probe.o));
      EXPECT_EQ(store->FirstObject(probe.s, probe.p),
                mem.FirstObject(probe.s, probe.p));
    }
    EXPECT_EQ(store->DistinctPredicates(), mem.DistinctPredicates());
    EXPECT_TRUE(store->ok());
    RemoveTree(dir);
  }
}

// Regression for the (s, ?, o) shape specifically: it routes through the
// OSP index with prefix (o, s) — the component-order inversion is the
// easiest place for an on-disk reimplementation to silently disagree.
TEST(ShardedStoreTest, SubjectObjectPatternUsesOspParity) {
  std::string dir = FreshDir("obgs2_osp");
  TripleStore mem;
  // Several predicates between the same (s, o) pairs, plus noise.
  for (rdf::TermId s = 0; s < 10; ++s) {
    for (rdf::TermId p = 0; p < 6; ++p) {
      for (rdf::TermId o = 0; o < 10; ++o) {
        if ((s + p + o) % 3 == 0) mem.Add(s, p, o);
      }
    }
  }
  auto store = BuildAndOpen(mem, dir, {.num_shards = 4, .block_size = 8});
  ASSERT_NE(store, nullptr);
  for (rdf::TermId s = 0; s < 12; ++s) {
    for (rdf::TermId o = 0; o < 12; ++o) {
      TriplePattern so{s, kAny, o};
      ExpectPatternParity(mem, *store, so);
      // The match order must be POS-within-(o, s): ascending predicate.
      std::vector<Triple> got = store->Match(so);
      for (size_t i = 1; i < got.size(); ++i) {
        EXPECT_LT(got[i - 1].p, got[i].p);
      }
    }
  }
  RemoveTree(dir);
}

TEST(ShardedStoreTest, SubjectRoutingAgreesWithSplitMix) {
  std::string dir = FreshDir("obgs2_route");
  TripleStore mem;
  util::Rng rng(7);
  FillRandomGraph(&rng, 300, 1000, 4, 50, &mem);
  auto store = BuildAndOpen(mem, dir, {.num_shards = 16, .block_size = 4});
  ASSERT_NE(store, nullptr);
  // Every subject-bound lookup must see exactly its triples; a routing
  // mismatch between builder and reader would lose whole subjects.
  for (const Triple& t : mem.triples()) {
    EXPECT_TRUE(store->Contains(t.s, t.p, t.o));
  }
  RemoveTree(dir);
}

// ------------------------------------------------------- fail-closed opens

TEST(ShardedStoreTest, ManifestTruncationSweepRefusesToOpen) {
  std::string dir = FreshDir("obgs2_mtrunc");
  TripleStore mem;
  util::Rng rng(3);
  FillRandomGraph(&rng, 60, 20, 4, 20, &mem);
  ASSERT_TRUE(rdf::BuildShardedStore(mem, dir, {.num_shards = 2}).ok());
  std::string manifest = dir + "/manifest.obgs2";
  const std::string blob = ReadWholeFile(manifest);
  ASSERT_GT(blob.size(), 16u);
  for (size_t len = 0; len < blob.size(); ++len) {
    WriteWholeFile(manifest, blob.substr(0, len));
    auto result = ShardedStore::Open(dir);
    EXPECT_FALSE(result.ok()) << "manifest truncated to " << len << " opened";
  }
  WriteWholeFile(manifest, blob);
  EXPECT_TRUE(ShardedStore::Open(dir).ok());
  RemoveTree(dir);
}

TEST(ShardedStoreTest, ShardTruncationSweepRefusesToOpen) {
  std::string dir = FreshDir("obgs2_strunc");
  TripleStore mem;
  util::Rng rng(4);
  FillRandomGraph(&rng, 50, 12, 3, 12, &mem);
  ASSERT_TRUE(
      rdf::BuildShardedStore(mem, dir, {.num_shards = 2, .block_size = 8})
          .ok());
  std::string shard = dir + "/shard-0000.seg";
  const std::string blob = ReadWholeFile(shard);
  ASSERT_GT(blob.size(), 40u);
  for (size_t len = 0; len < blob.size(); ++len) {
    WriteWholeFile(shard, blob.substr(0, len));
    auto result = ShardedStore::Open(dir);
    EXPECT_FALSE(result.ok()) << "shard truncated to " << len << " opened";
  }
  WriteWholeFile(shard, blob);
  EXPECT_TRUE(ShardedStore::Open(dir).ok());
  RemoveTree(dir);
}

TEST(ShardedStoreTest, EagerVerifyEveryBitFlipRefusesToOpen) {
  std::string dir = FreshDir("obgs2_flip");
  TripleStore mem;
  util::Rng rng(5);
  FillRandomGraph(&rng, 40, 10, 3, 10, &mem);
  ASSERT_TRUE(
      rdf::BuildShardedStore(mem, dir, {.num_shards = 1, .block_size = 8})
          .ok());
  std::string shard = dir + "/shard-0000.seg";
  const std::string blob = ReadWholeFile(shard);
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      WriteWholeFile(shard, blob);
      ASSERT_TRUE(util::FlipBit(shard, byte, bit).ok());
      auto result = ShardedStore::Open(
          dir, {.verify = ShardedOpenOptions::Verify::kEager});
      EXPECT_FALSE(result.ok())
          << "flip of byte " << byte << " bit " << bit << " opened";
    }
  }
  WriteWholeFile(shard, blob);
  RemoveTree(dir);
}

// The lazy-verify equivalent of the eager sweep: any single bit flip must
// either refuse the open (header/TOC damage) or latch the store corrupt by
// the end of one full scan — never a silently wrong or partial answer
// presented as healthy.
TEST(ShardedStoreTest, LazyVerifyEveryBitFlipIsCaughtByFullScan) {
  std::string dir = FreshDir("obgs2_lazyflip");
  TripleStore mem;
  util::Rng rng(6);
  FillRandomGraph(&rng, 40, 10, 3, 10, &mem);
  ASSERT_TRUE(
      rdf::BuildShardedStore(mem, dir, {.num_shards = 1, .block_size = 8})
          .ok());
  std::string shard = dir + "/shard-0000.seg";
  const std::string blob = ReadWholeFile(shard);
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      WriteWholeFile(shard, blob);
      ASSERT_TRUE(util::FlipBit(shard, byte, bit).ok());
      auto result = ShardedStore::Open(
          dir, {.verify = ShardedOpenOptions::Verify::kOnFirstUse});
      if (!result.ok()) continue;  // structural damage caught at open
      std::shared_ptr<const ShardedStore> store = result.value();
      // Touch every block of every order: the full scan decodes all SPO
      // blocks, DistinctPredicates decodes all POS blocks, and sweeping
      // every object value (o_range is 10 above) covers all OSP blocks.
      store->Match({kAny, kAny, kAny});
      store->DistinctPredicates();
      for (rdf::TermId o = 0; o < 10 && store->ok(); ++o) {
        store->Match({kAny, kAny, o});
      }
      EXPECT_FALSE(store->ok())
          << "flip of byte " << byte << " bit " << bit
          << " survived a full scan unlatched";
      EXPECT_FALSE(store->status().ok());
    }
  }
  WriteWholeFile(shard, blob);
  RemoveTree(dir);
}

TEST(ShardedStoreTest, LazyCorruptionLatchIsStickyAndCountsBlocks) {
  std::string dir = FreshDir("obgs2_latch");
  TripleStore mem;
  util::Rng rng(8);
  FillRandomGraph(&rng, 200, 30, 4, 30, &mem);
  ASSERT_TRUE(
      rdf::BuildShardedStore(mem, dir, {.num_shards = 1, .block_size = 16})
          .ok());
  // Flip a payload byte just past the header: block 0 of the SPO segment.
  std::string shard = dir + "/shard-0000.seg";
  ASSERT_TRUE(util::FlipBit(shard, 45, 2).ok());

  auto result = ShardedStore::Open(
      dir, {.verify = ShardedOpenOptions::Verify::kOnFirstUse});
  ASSERT_TRUE(result.ok()) << result.status().message();
  std::shared_ptr<const ShardedStore> store = result.value();
  EXPECT_TRUE(store->ok());  // nothing touched yet

  std::vector<Triple> first = store->Match({kAny, kAny, kAny});
  EXPECT_FALSE(store->ok());
  EXPECT_LT(first.size(), mem.size());  // aborted, not silently complete

  // Latched: every later read returns nothing, the error is sticky, and
  // the corrupt-block counter reports the evidence.
  EXPECT_TRUE(store->Match({kAny, kAny, kAny}).empty());
  EXPECT_TRUE(store->Match({0, kAny, kAny}).empty());
  EXPECT_FALSE(store->Contains(mem.triples()[0].s, mem.triples()[0].p,
                               mem.triples()[0].o));
  EXPECT_FALSE(store->status().ok());
  rdf::ShardedStoreStats stats = store->Stats();
  EXPECT_FALSE(stats.ok);
  EXPECT_GE(stats.blocks_corrupt, 1u);
  EXPECT_FALSE(stats.first_error.empty());
  RemoveTree(dir);
}

TEST(ShardedStoreTest, AbandonedBuilderLeavesNoManifestAndNoSpills) {
  std::string dir = FreshDir("obgs2_abandon");
  {
    ShardedStoreBuilder builder(dir, {.num_shards = 3});
    ASSERT_TRUE(builder.status().ok());
    for (rdf::TermId i = 0; i < 100; ++i) {
      ASSERT_TRUE(builder.Add(i, 1, i + 1).ok());
    }
    // No Finish(): simulates a crash before publish.
  }
  EXPECT_FALSE(ShardedStore::Open(dir).ok()) << "store without manifest opened";
  for (const std::string& name : ListDir(dir)) {
    EXPECT_EQ(name.find("spill-"), std::string::npos)
        << "leftover spill file " << name;
  }
  RemoveTree(dir);
}

TEST(ShardedStoreTest, BuildFailureDuringShardWriteFailsClosed) {
  std::string dir = FreshDir("obgs2_buildfault");
  TripleStore mem;
  util::Rng rng(9);
  FillRandomGraph(&rng, 80, 20, 3, 20, &mem);
  util::failpoints::Arm("atomic_file::rename");
  EXPECT_FALSE(rdf::BuildShardedStore(mem, dir, {.num_shards = 2}).ok());
  util::failpoints::DisarmAll();
  EXPECT_FALSE(ShardedStore::Open(dir).ok());
  RemoveTree(dir);
}

// ----------------------------------------------------- LiveGraph overlay

TEST(ShardedStoreTest, LiveGraphOverlaysDeltaOnShardedBase) {
  std::string dir = FreshDir("obgs2_live");
  TripleStore mem;
  for (rdf::TermId s = 0; s < 20; ++s) mem.Add(s, 1, s + 100);
  auto store = BuildAndOpen(mem, dir, {.num_shards = 4, .block_size = 8});
  ASSERT_NE(store, nullptr);

  rdf::LiveGraph live(store);
  EXPECT_EQ(live.Acquire()->size(), mem.size());
  EXPECT_TRUE(live.Acquire()->Contains(5, 1, 105));

  rdf::UpdateBatch batch;
  batch.adds.push_back({500, 2, 501});   // brand-new triple
  batch.adds.push_back({5, 1, 105});     // re-add of a base triple: no-op
  batch.retracts.push_back({7, 1, 107});  // retract a base triple
  ASSERT_TRUE(live.Apply(batch).ok());

  std::shared_ptr<const rdf::GraphSnapshot> snap = live.Acquire();
  EXPECT_EQ(snap->generation, 2u);
  EXPECT_TRUE(snap->Contains(500, 2, 501));
  EXPECT_TRUE(snap->Contains(5, 1, 105));
  EXPECT_FALSE(snap->Contains(7, 1, 107));
  EXPECT_EQ(snap->size(), mem.size());  // +1 add, -1 retract
  // The delta normalized the no-op re-add away (base membership came from
  // the sharded store's Contains).
  EXPECT_EQ(snap->delta->adds().size(), 1u);
  EXPECT_EQ(snap->delta->num_retracts(), 1u);

  // Merged iteration: base match minus retracts plus delta adds.
  std::vector<Triple> all = snap->Match({kAny, 1, kAny});
  EXPECT_EQ(all.size(), mem.size() - 1);
  for (const Triple& t : all) EXPECT_NE(t.s, 7u);

  // Compaction over an out-of-core base is an offline rebuild, not an
  // in-process fold.
  util::Status st = live.Compact();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kUnimplemented);
  RemoveTree(dir);
}

TEST(ShardedStoreTest, ThresholdCompactionIsSkippedForShardedBase) {
  std::string dir = FreshDir("obgs2_livethresh");
  TripleStore mem;
  for (rdf::TermId s = 0; s < 10; ++s) mem.Add(s, 1, s);
  auto store = BuildAndOpen(mem, dir, {.num_shards = 2});
  ASSERT_NE(store, nullptr);

  rdf::LiveGraph::Options options;
  options.compact_threshold = 1;  // would fire on every publish
  rdf::LiveGraph live(store, options);
  for (rdf::TermId i = 0; i < 5; ++i) {
    rdf::UpdateBatch batch;
    batch.adds.push_back({1000 + i, 3, i});
    ASSERT_TRUE(live.Apply(batch).ok());
  }
  live.WaitForCompaction();
  EXPECT_EQ(live.stats().compactions, 0u);
  EXPECT_EQ(live.delta_size(), 5u);  // overlay kept, never folded
  EXPECT_EQ(live.Acquire()->size(), mem.size() + 5);
  RemoveTree(dir);
}

// ------------------------------------------------------- serve integration

TEST(ShardedStoreTest, QueryEngineServesNeighborsFromShardedBase) {
  std::string dir = FreshDir("obgs2_serve");
  TripleStore mem;
  // Out-edges and in-edges around entity 3, plus a self-loop.
  mem.Add(3, 1, 10);
  mem.Add(3, 2, 11);
  mem.Add(20, 1, 3);
  mem.Add(3, 1, 3);
  mem.Add(8, 2, 9);  // unrelated
  auto store = BuildAndOpen(mem, dir, {.num_shards = 4, .block_size = 4});
  ASSERT_NE(store, nullptr);

  serve::ServeContext::Bindings bindings;
  bindings.sharded = store;
  serve::ServeContext context(bindings);
  serve::QueryEngine engine(&context, serve::EngineOptions{});

  serve::Response resp = engine.Neighbors(3);
  ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
  EXPECT_EQ(resp.payload.triples.size(), 4u);  // self-loop reported once
  // Cached second call is identical.
  serve::Response again = engine.Neighbors(3);
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.payload.triples, resp.payload.triples);

  std::string metrics = engine.MetricsJson();
  EXPECT_NE(metrics.find("\"sharded_store\""), std::string::npos);
  EXPECT_NE(metrics.find("\"num_shards\":4"), std::string::npos);
  EXPECT_NE(metrics.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(metrics.find("\"memory\""), std::string::npos);
  EXPECT_NE(metrics.find("\"process_rss_bytes\""), std::string::npos);
  RemoveTree(dir);
}

TEST(ShardedStoreTest, QueryEngineDegradesWhenShardedBaseLatchesCorrupt) {
  std::string dir = FreshDir("obgs2_servecorrupt");
  TripleStore mem;
  util::Rng rng(10);
  FillRandomGraph(&rng, 300, 20, 3, 20, &mem);
  ASSERT_TRUE(
      rdf::BuildShardedStore(mem, dir, {.num_shards = 1, .block_size = 16})
          .ok());
  ASSERT_TRUE(util::FlipBit(dir + "/shard-0000.seg", 45, 1).ok());
  auto result = ShardedStore::Open(
      dir, {.verify = ShardedOpenOptions::Verify::kOnFirstUse});
  ASSERT_TRUE(result.ok());

  serve::ServeContext::Bindings bindings;
  bindings.sharded = result.value();
  serve::ServeContext context(bindings);
  serve::EngineOptions options;
  options.cache_enabled = false;  // no stale-hit escape hatch
  serve::QueryEngine engine(&context, options);

  // Query the subject with the globally smallest SPO key: its candidate
  // range starts in block 0 of the SPO segment — the block the flip above
  // corrupted — so this request is the one that discovers the damage.
  std::vector<Triple> sorted = mem.triples();
  std::sort(sorted.begin(), sorted.end(), SpoLess);

  // The request that *discovers* the corruption must not return a partial
  // answer as kOk — the post-scan BaseOk re-check degrades it.
  serve::Response first = engine.Neighbors(sorted.front().s);
  EXPECT_EQ(first.status, serve::ServeStatus::kDegraded);
  EXPECT_TRUE(first.payload.triples.empty());
  // Every later request short-circuits on the latch.
  serve::Response later = engine.Neighbors(sorted.back().s);
  EXPECT_EQ(later.status, serve::ServeStatus::kDegraded);

  serve::HealthState hs = engine.ComputeHealth();
  EXPECT_EQ(hs.base_store.health, serve::Health::kUnhealthy);
  EXPECT_EQ(hs.overall(), serve::Health::kUnhealthy);
  std::string metrics = engine.MetricsJson();
  EXPECT_NE(metrics.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(metrics.find("base_store"), std::string::npos);
  RemoveTree(dir);
}

// ------------------------------------------------ streaming SnapshotReader

TEST(StreamingSnapshotReaderTest, SectionsLoadOnDemandWithFreshCursors) {
  std::string path = ::testing::TempDir() + "/obgs2_stream.snap";
  util::SnapshotWriter writer(path, "STREAMT1", 1);
  writer.BeginSection(10);
  writer.PutU32(42);
  writer.PutString("alpha");
  writer.BeginSection(20);
  writer.PutU64(1ull << 40);
  ASSERT_TRUE(writer.Finish().ok());

  util::SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, "STREAMT1", 1).ok());
  ASSERT_EQ(reader.num_sections(), 2u);

  // Out-of-order and repeated loads each get an independent cursor.
  util::SnapshotSection second = reader.section(1);
  EXPECT_EQ(second.tag(), 20u);
  uint64_t v64 = 0;
  ASSERT_TRUE(second.ReadU64(&v64).ok());
  EXPECT_EQ(v64, 1ull << 40);
  EXPECT_TRUE(second.AtEnd());

  for (int round = 0; round < 2; ++round) {
    util::SnapshotSection first = reader.section(0);
    EXPECT_EQ(first.tag(), 10u);
    uint32_t v32 = 0;
    std::string s;
    ASSERT_TRUE(first.ReadU32(&v32).ok());
    ASSERT_TRUE(first.ReadString(&s).ok());
    EXPECT_EQ(v32, 42u);
    EXPECT_EQ(s, "alpha");
  }
  std::remove(path.c_str());
}

TEST(StreamingSnapshotReaderTest, FileChangedAfterOpenFailsSectionReads) {
  std::string path = ::testing::TempDir() + "/obgs2_stream_rot.snap";
  util::SnapshotWriter writer(path, "STREAMT1", 1);
  writer.BeginSection(1);
  writer.PutString("payload that will rot");
  ASSERT_TRUE(writer.Finish().ok());

  util::SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, "STREAMT1", 1).ok());

  // Rot a payload bit AFTER validation: the on-demand load re-derives the
  // CRC, so the stale SectionInfo cannot vouch for changed bytes. Byte 40
  // is inside the string body (16B file header + 12B section header + 8B
  // string length prefix = 36).
  ASSERT_TRUE(util::FlipBit(path, 40, 4).ok());
  util::SnapshotSection section = reader.section(0);
  std::string s;
  util::Status st = section.ReadString(&s);
  EXPECT_FALSE(st.ok());
  // The error is sticky: every subsequent read keeps failing.
  uint32_t v = 0;
  EXPECT_FALSE(section.ReadU32(&v).ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------ memory accounting

TEST(MemoryAccountingTest, PerIndexBytesAppearAfterSeal) {
  TripleStore store;
  util::Rng rng(12);
  FillRandomGraph(&rng, 500, 50, 5, 50, &store);
  store.SealIndexes();
  rdf::TripleStoreMemory m = store.MemoryUsage();
  EXPECT_GE(m.triples_bytes, store.size() * sizeof(Triple));
  EXPECT_GT(m.dedup_bytes, 0u);
  EXPECT_GE(m.idx_spo_bytes, store.size() * sizeof(uint32_t));
  EXPECT_GE(m.idx_pos_bytes, store.size() * sizeof(uint32_t));
  EXPECT_GE(m.idx_osp_bytes, store.size() * sizeof(uint32_t));
  EXPECT_EQ(m.total(), m.triples_bytes + m.dedup_bytes + m.idx_spo_bytes +
                           m.idx_pos_bytes + m.idx_osp_bytes);

  rdf::TermDict dict;
  dict.AddIri("http://openbg.example/a-long-enough-iri-to-defeat-sso");
  EXPECT_GT(dict.MemoryUsage(), 0u);
  EXPECT_GT(util::ProcessRssBytes(), 0u);
}

TEST(MemoryAccountingTest, MappedFileReportsResidency) {
  std::string path = ::testing::TempDir() + "/obgs2_mapped_probe";
  std::string content(256 * 1024, 'x');
  WriteWholeFile(path, content);
  util::MappedFile file;
  ASSERT_TRUE(file.Open(path).ok());
  EXPECT_EQ(file.size(), content.size());
  // Touch every page, then residency must be complete.
  size_t sum = 0;
  for (size_t i = 0; i < file.size(); i += 4096) sum += file.data()[i];
  ASSERT_GT(sum, 0u);
  EXPECT_EQ(file.ResidentBytes(), file.size());
  file.Close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace openbg
