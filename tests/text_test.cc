#include <gtest/gtest.h>

#include "text/fuzzy.h"
#include "text/tokenizer.h"
#include "text/trie.h"
#include "text/vocabulary.h"

namespace openbg::text {
namespace {

TEST(TokenizerTest, AsciiWordsAndPunctuation) {
  EXPECT_EQ(Tokenize("Hello, World! 3x"),
            (std::vector<std::string>{"hello", "world", "3x"}));
}

TEST(TokenizerTest, CjkCharactersSplitIndividually) {
  EXPECT_EQ(Tokenize("大米abc茶"),
            (std::vector<std::string>{"大", "米", "abc", "茶"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n ").empty());
}

TEST(TokenizerTest, UnderscoreKeptInToken) {
  EXPECT_EQ(Tokenize("250g_x3"), (std::vector<std::string>{"250g_x3"}));
}

TEST(CharNgramsTest, Basic) {
  EXPECT_EQ(CharNgrams("abcd", 3),
            (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_TRUE(CharNgrams("ab", 3).empty());
  EXPECT_TRUE(CharNgrams("abc", 0).empty());
}

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LcsLength({"a", "b", "c", "d"}, {"b", "d"}), 2u);
  EXPECT_EQ(LcsLength({"a"}, {"b"}), 0u);
  EXPECT_EQ(LcsLength({}, {"a"}), 0u);
}

TEST(RougeLTest, PerfectAndZero) {
  std::vector<std::string> ref = {"short", "red", "dress"};
  EXPECT_DOUBLE_EQ(RougeL(ref, ref), 1.0);
  EXPECT_DOUBLE_EQ(RougeL({"x"}, ref), 0.0);
  EXPECT_DOUBLE_EQ(RougeL({}, ref), 0.0);
}

TEST(RougeLTest, PartialOverlap) {
  // candidate {a,b}, reference {a,b,c,d}: LCS=2, P=1, R=0.5, F1=2/3.
  double f = RougeL({"a", "b"}, {"a", "b", "c", "d"});
  EXPECT_NEAR(f, 2.0 / 3.0, 1e-9);
}

TEST(TrieTest, InsertFind) {
  Trie t;
  t.Insert("apple", 1);
  t.Insert("app", 2);
  EXPECT_EQ(t.Find("apple"), 1u);
  EXPECT_EQ(t.Find("app"), 2u);
  EXPECT_EQ(t.Find("ap"), Trie::kNoValue);
  EXPECT_EQ(t.Find("applesauce"), Trie::kNoValue);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TrieTest, OverwriteKeepsSize) {
  Trie t;
  t.Insert("a", 1);
  t.Insert("a", 9);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Find("a"), 9u);
}

TEST(TrieTest, HasPrefix) {
  Trie t;
  t.Insert("shanghai", 3);
  EXPECT_TRUE(t.HasPrefix("shang"));
  EXPECT_TRUE(t.HasPrefix(""));
  EXPECT_FALSE(t.HasPrefix("shb"));
}

TEST(TrieTest, LongestPrefixMatch) {
  Trie t;
  t.Insert("new", 1);
  t.Insert("new york", 2);
  Trie::Match m = t.LongestPrefixMatch("new york city", 0);
  EXPECT_EQ(m.length, 8u);
  EXPECT_EQ(m.value, 2u);
  m = t.LongestPrefixMatch("newark", 0);
  EXPECT_EQ(m.length, 3u);
  EXPECT_EQ(m.value, 1u);
  m = t.LongestPrefixMatch("xnew", 0);
  EXPECT_EQ(m.length, 0u);
}

TEST(TrieTest, FindAllNonOverlapping) {
  Trie t;
  t.Insert("ab", 1);
  t.Insert("bc", 2);
  std::vector<Trie::SpanMatch> spans = t.FindAll("abbcab");
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].value, 1u);
  EXPECT_EQ(spans[1].value, 2u);
  EXPECT_EQ(spans[2].begin, 4u);
}

TEST(FuzzyMatcherTest, ExactAndSynonym) {
  FuzzyMatcher m(0.8);
  m.AddCanonical("Apple", 1);
  ASSERT_TRUE(m.AddSynonym("pingguo", "apple"));
  EXPECT_FALSE(m.AddSynonym("x", "unknown"));
  auto r = m.Resolve("APPLE");
  EXPECT_EQ(r.id, 1u);
  EXPECT_TRUE(r.exact);
  r = m.Resolve("Pingguo");
  EXPECT_EQ(r.id, 1u);
  EXPECT_TRUE(r.exact);
}

TEST(FuzzyMatcherTest, SynonymCollisionKeepsFirstBinding) {
  FuzzyMatcher m(0.8);
  m.AddCanonical("apple", 1);
  m.AddCanonical("pear", 2);
  // Alias colliding with an existing *canonical* entry: rejected, and
  // "pear" still resolves to its own id.
  EXPECT_FALSE(m.AddSynonym("pear", "apple"));
  EXPECT_EQ(m.Resolve("pear").id, 2u);
  // Alias colliding with an earlier *synonym*: first binding wins.
  ASSERT_TRUE(m.AddSynonym("fruit", "apple"));
  EXPECT_FALSE(m.AddSynonym("fruit", "pear"));
  EXPECT_EQ(m.Resolve("fruit").id, 1u);
  // Re-registering the same alias -> same id is a harmless no-op.
  EXPECT_TRUE(m.AddSynonym("fruit", "apple"));
  EXPECT_FALSE(m.AddSynonym("", "apple"));
}

TEST(FuzzyMatcherTest, FuzzyWithinThreshold) {
  FuzzyMatcher m(0.75);
  m.AddCanonical("hangzhou", 5);
  auto r = m.Resolve("hangzhuo");  // transposition
  EXPECT_EQ(r.id, 5u);
  EXPECT_FALSE(r.exact);
  EXPECT_GE(r.similarity, 0.75);
}

TEST(FuzzyMatcherTest, BelowThresholdMisses) {
  FuzzyMatcher m(0.9);
  m.AddCanonical("hangzhou", 5);
  auto r = m.Resolve("hzngzyyy");
  EXPECT_EQ(r.id, FuzzyMatcher::kNoMatch);
}

TEST(FuzzyMatcherTest, ThresholdOneDisablesFuzzy) {
  FuzzyMatcher m(1.0);
  m.AddCanonical("brand", 2);
  EXPECT_EQ(m.Resolve("brand").id, 2u);
  EXPECT_EQ(m.Resolve("brend").id, FuzzyMatcher::kNoMatch);
}

TEST(FuzzyMatcherTest, PrefersCloserCandidate) {
  FuzzyMatcher m(0.5);
  m.AddCanonical("aaaa", 1);
  m.AddCanonical("aaab", 2);
  auto r = m.Resolve("aaab");
  EXPECT_EQ(r.id, 2u);
}

TEST(VocabularyTest, BuildAndLookup) {
  Vocabulary v;
  for (const char* t : {"red", "red", "dress", "red", "blue"}) v.Observe(t);
  v.Build(/*min_count=*/2);
  EXPECT_EQ(v.Id("blue"), Vocabulary::kUnk) << "below min_count -> unk";
  EXPECT_EQ(v.Id("dress"), Vocabulary::kUnk) << "below min_count -> unk";
  EXPECT_NE(v.Id("red"), Vocabulary::kUnk);
  EXPECT_EQ(v.Id("never"), Vocabulary::kUnk);
  EXPECT_EQ(v.Token(v.Id("red")), "red");
  EXPECT_EQ(v.Frequency(v.Id("red")), 3u);
  // <unk> absorbs pruned counts (dress + blue).
  EXPECT_EQ(v.Frequency(Vocabulary::kUnk), 2u);
}

TEST(VocabularyTest, FrequencyOrderIsDeterministic) {
  Vocabulary a, b;
  for (const char* t : {"x", "y", "y", "z"}) {
    a.Observe(t);
    b.Observe(t);
  }
  a.Build();
  b.Build();
  EXPECT_EQ(a.Id("y"), b.Id("y"));
  EXPECT_EQ(a.Id("y"), 1u) << "most frequent token gets the first id";
}

}  // namespace
}  // namespace openbg::text
