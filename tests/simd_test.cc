#include "nn/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "nn/kernels.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace openbg::nn {
namespace {

// Restores auto dispatch when a test that forces a backend exits, so test
// order never leaks a forced kernel into later tests.
struct ScopedKernel {
  explicit ScopedKernel(const std::string& name) {
    ok = simd::ForceKernel(name);
  }
  ~ScopedKernel() { simd::ForceKernel("auto"); }
  bool ok;
};

std::vector<float> RandomVector(util::Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng->UniformDouble() * 2.0 - 1.0);
  }
  return v;
}

// Lengths straddling every vector-width boundary the backends care about:
// below one lane group (1, 7), exactly one (8), one plus a tail (9), and
// the same around the 16-wide unrolled loop (63, 64, 65).
const size_t kLengths[] = {1, 7, 8, 9, 63, 64, 65, 100, 256, 1000};

// Reassociated 8-lane sums differ from the scalar left-to-right fold in the
// low bits; the bound scales with the number of terms (values are in
// [-1, 1], so per-term magnitude is O(1)).
float SumTolerance(size_t n) { return 1e-5f * static_cast<float>(n + 8); }

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  auto kernels = simd::SupportedKernels();
  EXPECT_NE(std::find(kernels.begin(), kernels.end(), "scalar"),
            kernels.end());
  EXPECT_TRUE(simd::ForceKernel("scalar"));
  EXPECT_STREQ(simd::Active().name, "scalar");
  EXPECT_TRUE(simd::ForceKernel("auto"));
}

TEST(SimdDispatchTest, UnsupportedNameIsRejected) {
  EXPECT_FALSE(simd::ForceKernel("no-such-backend"));
}

TEST(SimdParityTest, ReductionsMatchScalar) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(101);
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& k = simd::Active();
    for (size_t n : kLengths) {
      std::vector<float> a = RandomVector(&rng, n);
      std::vector<float> b = RandomVector(&rng, n);
      EXPECT_NEAR(k.dot(a.data(), b.data(), n),
                  scalar.dot(a.data(), b.data(), n), SumTolerance(n))
          << name << " dot n=" << n;
      EXPECT_NEAR(k.l1_distance(a.data(), b.data(), n),
                  scalar.l1_distance(a.data(), b.data(), n), SumTolerance(n))
          << name << " l1 n=" << n;
      EXPECT_NEAR(k.l2_distance_squared(a.data(), b.data(), n),
                  scalar.l2_distance_squared(a.data(), b.data(), n),
                  SumTolerance(n))
          << name << " l2 n=" << n;
    }
  }
}

TEST(SimdParityTest, ElementwiseMatchScalar) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(102);
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& k = simd::Active();
    for (size_t n : kLengths) {
      std::vector<float> x = RandomVector(&rng, n);
      std::vector<float> y = RandomVector(&rng, n);
      std::vector<float> y_ref = y;
      k.axpy(0.37f, x.data(), y.data(), n);
      scalar.axpy(0.37f, x.data(), y_ref.data(), n);
      for (size_t i = 0; i < n; ++i) {
        // FMA fuses a*x+y into one rounding; allow 1-ulp-ish slack.
        EXPECT_NEAR(y[i], y_ref[i], 1e-6f) << name << " axpy n=" << n;
      }
      std::vector<float> s = x, s_ref = x;
      k.scale(-1.75f, s.data(), n);
      scalar.scale(-1.75f, s_ref.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_FLOAT_EQ(s[i], s_ref[i]) << name << " scale n=" << n;
      }
    }
  }
}

TEST(SimdParityTest, GemmMatchesScalarAcrossShapesAndTransposes) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(103);
  struct Shape {
    size_t m, n, k;
  };
  // Odd/even mixes around the 6x16 register tile, GEMV shapes (m == 1 and
  // n == 1), and one shape big enough to take several cache-block trips.
  const Shape shapes[] = {{1, 1, 1},   {2, 3, 4},   {6, 16, 8},  {7, 17, 9},
                          {5, 33, 63}, {13, 5, 65}, {1, 64, 65}, {64, 1, 65},
                          {1, 1, 300}, {96, 80, 72}};
  const float alphas[] = {1.0f, 0.5f};
  const float betas[] = {0.0f, 1.0f, -0.25f};
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& kt = simd::Active();
    for (const Shape& s : shapes) {
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          // Stored dims: op(A) is m x k, op(B) is k x n.
          const size_t lda = ta ? s.m : s.k;
          const size_t ldb = tb ? s.k : s.n;
          std::vector<float> a = RandomVector(&rng, s.m * s.k);
          std::vector<float> b = RandomVector(&rng, s.k * s.n);
          std::vector<float> c0 = RandomVector(&rng, s.m * s.n);
          for (float alpha : alphas) {
            for (float beta : betas) {
              std::vector<float> c = c0, c_ref = c0;
              kt.gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(),
                      ldb, beta, c.data(), s.n);
              scalar.gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda,
                          b.data(), ldb, beta, c_ref.data(), s.n);
              const float tol = SumTolerance(s.k);
              for (size_t i = 0; i < s.m * s.n; ++i) {
                ASSERT_NEAR(c[i], c_ref[i], tol)
                    << name << " gemm m=" << s.m << " n=" << s.n
                    << " k=" << s.k << " ta=" << ta << " tb=" << tb
                    << " alpha=" << alpha << " beta=" << beta << " i=" << i;
              }
            }
          }
        }
      }
    }
  }
}

TEST(SimdParityTest, GemmAlphaZeroScalesCOnly) {
  util::Rng rng(104);
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    std::vector<float> a = RandomVector(&rng, 12);
    std::vector<float> b = RandomVector(&rng, 12);
    std::vector<float> c = RandomVector(&rng, 9);
    std::vector<float> expected = c;
    for (float& x : expected) x *= 0.5f;
    simd::Active().gemm(false, false, 3, 3, 4, 0.0f, a.data(), 4, b.data(),
                        3, 0.5f, c.data(), 3);
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_FLOAT_EQ(c[i], expected[i]) << name;
    }
  }
}

// The Matrix-level nn::Gemm wrapper must ride the dispatched table: under
// each forced backend its output must match a raw simd::Active().gemm call
// exactly, which fails if the wrapper bypasses dispatch.
TEST(SimdParityTest, MatrixGemmMatchesRawKernel) {
  util::Rng rng(105);
  const size_t m = 9, n = 20, k = 33;
  Matrix a(m, k), b(k, n), c(m, n);
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.UniformDouble();
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.UniformDouble();
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    c.Fill(0.0f);
    Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    std::vector<float> c_raw(m * n, 0.0f);
    simd::Active().gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(),
                        n, 0.0f, c_raw.data(), n);
    for (size_t i = 0; i < m * n; ++i) {
      EXPECT_FLOAT_EQ(c.data()[i], c_raw[i]) << name;
    }
  }
}

TEST(SimdParityTest, RowDotsMatchesPerRowDot) {
  util::Rng rng(106);
  const size_t rows = 37, cols = 24;
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  std::vector<float> q = RandomVector(&rng, cols);
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    // Full-width and prefix-width queries (ComplEx scores over 2*dim, text
    // models over dim <= cols).
    for (size_t d : {cols, cols / 2}) {
      std::vector<float> out;
      RowDots(m, q.data(), d, &out);
      ASSERT_EQ(out.size(), rows);
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_NEAR(out[r], simd::Dot(m.Row(r), q.data(), d),
                    SumTolerance(d))
            << name << " row=" << r << " d=" << d;
      }
    }
  }
}

std::vector<int8_t> RandomCodes(util::Rng* rng, size_t n) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(static_cast<int>(rng->Uniform(255)) - 127);
  }
  return v;
}

// Int8 kernels back the ANN scan path, whose determinism guarantee rests on
// them: the integer reductions must be *exactly* equal across backends (the
// accumulator is a plain int32 sum, associative in any order), and the
// quantized dot-scan must be *bitwise* equal because all backends compute
// the identical dequant expression (q_scale * scale[r]) * float(int_acc).
// Sweep every width 1..1000 so no lane-boundary tail goes untested (8- and
// 16-wide groups, the 32-wide unroll, and every remainder of each).
TEST(SimdParityTest, Int8ReductionsExactlyMatchScalarAllWidths) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(108);
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& k = simd::Active();
    for (size_t n = 1; n <= 1000; ++n) {
      std::vector<int8_t> a = RandomCodes(&rng, n);
      std::vector<int8_t> b = RandomCodes(&rng, n);
      ASSERT_EQ(k.dot_i8(a.data(), b.data(), n),
                scalar.dot_i8(a.data(), b.data(), n))
          << name << " dot_i8 n=" << n;
      ASSERT_EQ(k.l1_distance_i8(a.data(), b.data(), n),
                scalar.l1_distance_i8(a.data(), b.data(), n))
          << name << " l1_i8 n=" << n;
    }
  }
}

TEST(SimdParityTest, Int8DotScanBitwiseMatchesScalarAllWidths) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(109);
  const size_t kRows = 3;
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& k = simd::Active();
    for (size_t dim = 1; dim <= 1000; ++dim) {
      std::vector<int8_t> q = RandomCodes(&rng, dim);
      std::vector<int8_t> rows = RandomCodes(&rng, kRows * dim);
      std::vector<float> scales(kRows);
      for (float& s : scales) {
        s = 1e-3f + static_cast<float>(rng.UniformDouble()) * 0.01f;
      }
      const float q_scale = 0.0123f;
      std::vector<float> out(kRows), out_ref(kRows);
      k.scan_dot_i8(q.data(), q_scale, rows.data(), scales.data(), kRows,
                    dim, out.data());
      scalar.scan_dot_i8(q.data(), q_scale, rows.data(), scales.data(),
                         kRows, dim, out_ref.data());
      for (size_t r = 0; r < kRows; ++r) {
        ASSERT_EQ(out[r], out_ref[r])
            << name << " scan_dot_i8 dim=" << dim << " row=" << r;
      }
    }
  }
}

TEST(SimdParityTest, Int8L1ScanMatchesScalarAllWidths) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(110);
  const size_t kRows = 3;
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& k = simd::Active();
    for (size_t dim = 1; dim <= 1000; ++dim) {
      std::vector<float> q = RandomVector(&rng, dim);
      std::vector<int8_t> rows = RandomCodes(&rng, kRows * dim);
      std::vector<float> scales(kRows);
      for (float& s : scales) {
        s = 1e-3f + static_cast<float>(rng.UniformDouble()) * 0.01f;
      }
      std::vector<float> out(kRows), out_ref(kRows);
      k.scan_l1_i8(q.data(), rows.data(), scales.data(), kRows, dim,
                   out.data());
      scalar.scan_l1_i8(q.data(), rows.data(), scales.data(), kRows, dim,
                        out_ref.data());
      for (size_t r = 0; r < kRows; ++r) {
        // Float accumulation reassociates across lanes; same bound as the
        // float reductions above.
        ASSERT_NEAR(out[r], out_ref[r], SumTolerance(dim))
            << name << " scan_l1_i8 dim=" << dim << " row=" << r;
      }
    }
  }
}

// Randomized sweep: many small odd shapes, both vector ops and gemm, to
// shake out tail-handling bugs the fixed grids might miss.
TEST(SimdParityTest, RandomizedShapes) {
  const auto& scalar = simd::Scalar();
  util::Rng rng(107);
  for (const std::string& name : simd::SupportedKernels()) {
    ScopedKernel forced(name);
    ASSERT_TRUE(forced.ok) << name;
    const auto& kt = simd::Active();
    for (int trial = 0; trial < 50; ++trial) {
      const size_t n = 1 + rng.Uniform(130);
      std::vector<float> a = RandomVector(&rng, n);
      std::vector<float> b = RandomVector(&rng, n);
      EXPECT_NEAR(kt.dot(a.data(), b.data(), n),
                  scalar.dot(a.data(), b.data(), n), SumTolerance(n))
          << name << " n=" << n;
      const size_t m = 1 + rng.Uniform(9);
      const size_t cols = 1 + rng.Uniform(20);
      const size_t k = 1 + rng.Uniform(40);
      std::vector<float> ga = RandomVector(&rng, m * k);
      std::vector<float> gb = RandomVector(&rng, k * cols);
      std::vector<float> c(m * cols, 0.0f), c_ref(m * cols, 0.0f);
      kt.gemm(false, false, m, cols, k, 1.0f, ga.data(), k, gb.data(), cols,
              0.0f, c.data(), cols);
      scalar.gemm(false, false, m, cols, k, 1.0f, ga.data(), k, gb.data(),
                  cols, 0.0f, c_ref.data(), cols);
      for (size_t i = 0; i < c.size(); ++i) {
        ASSERT_NEAR(c[i], c_ref[i], SumTolerance(k))
            << name << " m=" << m << " n=" << cols << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace openbg::nn
