// Randomized fault-sweep harness (the chaos-hardening ISSUE's acceptance
// test). Each episode arms a random subset of failpoint sites with seeded
// probabilistic firing, then drives 8 threads of mixed-endpoint traffic —
// LinkPredictTopK, Neighbors, ConceptsOf, EntityLink — concurrent with
// live delta ingest, background compaction, and checkpoint reloads, all
// while the faults flip. Invariants checked every episode:
//
//   1. No crash, no deadlock: every request returns, WaitForCompaction
//      returns, the writer's Apply/Reload calls fail with typed Statuses
//      rather than corrupting anything.
//   2. Every response carries a valid ServeStatus; kOk link predictions
//      are well-formed (k results, scores monotone non-increasing).
//   3. After the faults clear: all circuit breakers re-close under
//      recovery traffic, health returns green, compaction drains, and
//      cached answers are byte-identical to a cache-off recomputation.
//
// The sweep seed comes from OPENBG_CHAOS_SEED (default 1), so a CI
// failure reproduces with the seed it prints. scripts/check_all.sh runs
// five distinct seeds under both the default and TSan presets.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/openbg.h"
#include "kge/checkpoint.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "net/client.h"
#include "net/server.h"
#include "rdf/delta_segment.h"
#include "rdf/live_graph.h"
#include "serve/engine.h"
#include "serve/health.h"
#include "util/clock.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace openbg::serve {
namespace {

uint64_t SweepSeed() {
  const char* env = std::getenv("OPENBG_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

/// Every failpoint site the sweep may arm. Probabilities are per-site so
/// high-frequency sites (one hit per batch write) stay survivable while
/// still firing often; serve::stall sleeps ~5ms per hit so it fires
/// rarely to keep the test fast on one core.
struct ChaosSite {
  const char* name;
  double probability;
};
constexpr ChaosSite kSites[] = {
    {"atomic_file::write", 0.20},  {"atomic_file::fsync", 0.20},
    {"atomic_file::rename", 0.20}, {"live::publish", 0.15},
    {"live::compact", 0.25},       {"serve::model_fault", 0.30},
    {"serve::graph_fault", 0.30},  {"serve::link_fault", 0.30},
    {"serve::overload", 0.10},     {"serve::stall", 0.03},
    {"checkpoint::read", 0.50},
};

bool ValidStatus(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk:
    case ServeStatus::kInvalidArgument:
    case ServeStatus::kDeadlineExceeded:
    case ServeStatus::kShed:
    case ServeStatus::kDegraded:
      return true;
  }
  return false;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::OpenBG::Options options;
    options.world.seed = 11;
    options.world.scale = 0.25;
    options.world.num_products = 300;
    kg_ = core::OpenBG::Build(options).release();

    bench_builder::BenchmarkSpec spec;
    spec.name = "chaos-test";
    spec.num_relations = 12;
    spec.dev_size = 40;
    spec.test_size = 80;
    ds_ = new kge::Dataset(kg_->BuildBenchmark(spec, nullptr));

    util::Rng rng(3);
    model_ = new kge::TransE(ds_->num_entities(), ds_->num_relations(), 16,
                             1.0f, &rng);
    kge::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 256;
    TrainKgeModel(model_, *ds_, config);

    mapper_ = new construction::SchemaMapper(kg_->world().brands);

    // The reload target: a good checkpoint of the trained model. Each
    // reload loads into a fresh staging model; in-flight requests pin the
    // previous generation via shared_ptr until they drain.
    ckpt_path_ = ::testing::TempDir() + "/chaos_model.obgckpt";
    kge::TrainerCheckpoint ckpt;
    ckpt.model_name = model_->name();
    ASSERT_TRUE(kge::SaveCheckpoint(ckpt, model_, ckpt_path_).ok());
  }

  static void TearDownTestSuite() {
    std::remove(ckpt_path_.c_str());
    delete mapper_;
    delete model_;
    delete ds_;
    delete kg_;
    mapper_ = nullptr;
    model_ = nullptr;
    ds_ = nullptr;
    kg_ = nullptr;
  }

  void TearDown() override { util::failpoints::DisarmAll(); }

  static core::OpenBG* kg_;
  static kge::Dataset* ds_;
  static kge::TransE* model_;
  static construction::SchemaMapper* mapper_;
  static std::string ckpt_path_;

  // Builds a fresh staging model for one ReloadModelFromCheckpoint call.
  static std::shared_ptr<kge::TransE> MakeStaging(uint64_t seed) {
    util::Rng rng(seed);
    return std::make_shared<kge::TransE>(ds_->num_entities(),
                                         ds_->num_relations(), 16, 1.0f, &rng);
  }
};

core::OpenBG* ChaosTest::kg_ = nullptr;
kge::Dataset* ChaosTest::ds_ = nullptr;
kge::TransE* ChaosTest::model_ = nullptr;
construction::SchemaMapper* ChaosTest::mapper_ = nullptr;
std::string ChaosTest::ckpt_path_;

TEST_F(ChaosTest, RandomizedFaultSweepNeverBreaksInvariants) {
  const uint64_t seed = SweepSeed();
  SCOPED_TRACE("OPENBG_CHAOS_SEED=" + std::to_string(seed));

  util::ThreadPool compaction_pool(1);
  rdf::LiveGraph::Options live_opts;
  live_opts.compact_threshold = 64;
  live_opts.pool = &compaction_pool;
  rdf::LiveGraph live(rdf::LiveGraph::Alias(&kg_->graph().store), live_opts);

  ServeContext::Bindings bindings;
  bindings.graph = &kg_->graph();
  bindings.ontology = &kg_->ontology();
  bindings.dataset = ds_;
  bindings.model = model_;
  bindings.mapper = mapper_;
  bindings.live = &live;
  ServeContext ctx(bindings);

  EngineOptions engine_opts;
  engine_opts.num_threads = 2;
  engine_opts.breaker.window = 16;
  engine_opts.breaker.min_samples = 4;
  engine_opts.breaker.open_cooldown_us = 2'000;
  engine_opts.breaker.half_open_probes = 1;
  QueryEngine engine(&ctx, engine_opts);
  // The oracle recomputes every answer from scratch against the same
  // context — the cached engine must agree byte-for-byte once healthy.
  EngineOptions oracle_opts = engine_opts;
  oracle_opts.cache_enabled = false;
  QueryEngine oracle(&ctx, oracle_opts);

  const std::vector<rdf::TermId>& products = kg_->assembly().product_terms;
  const datagen::TaxonomyData& brands = kg_->world().brands;
  rdf::TermId rel = kg_->ontology().related_scene();
  util::Rng sweep_rng(seed);

  constexpr int kEpisodes = 3;
  constexpr size_t kReaders = 7;  // + 1 ingest/reload writer = 8 threads
  constexpr size_t kIters = 25;
  std::atomic<uint64_t> invalid_statuses{0};
  std::atomic<uint64_t> malformed_topk{0};
  uint64_t reload_seq = 0;

  for (int episode = 0; episode < kEpisodes; ++episode) {
    SCOPED_TRACE("episode " + std::to_string(episode));
    // --- Arm a random subset of sites, seeded and probabilistic. Every
    // episode arms at least 6 of them (the acceptance floor). ---
    constexpr size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);
    bool arm[kNumSites];
    size_t armed = 0;
    for (size_t s = 0; s < kNumSites; ++s) {
      arm[s] = sweep_rng.Uniform(2) == 0;
      if (arm[s]) ++armed;
    }
    for (size_t s = 0; armed < 6 && s < kNumSites; ++s) {
      if (!arm[s]) {
        arm[s] = true;
        ++armed;
      }
    }
    for (size_t s = 0; s < kNumSites; ++s) {
      if (!arm[s]) continue;
      util::failpoints::FailpointSpec spec;
      spec.probability = kSites[s].probability;
      spec.seed = sweep_rng.Next();
      util::failpoints::ArmSpec(kSites[s].name, spec);
    }
    ASSERT_GE(armed, 6u) << "sweep must exercise at least 6 sites";

    // --- 7 reader threads + 1 ingest/reload writer under fire. ---
    std::vector<std::thread> threads;
    for (size_t ti = 0; ti < kReaders; ++ti) {
      threads.emplace_back([&, ti, episode] {
        util::Rng rng(seed * 1000003 + episode * 101 + ti);
        for (size_t i = 0; i < kIters; ++i) {
          switch (rng.Uniform(4)) {
            case 0: {
              const kge::LpTriple& q = ds_->test[rng.Uniform(ds_->test.size())];
              size_t k = 1 + rng.Uniform(8);
              Response r = engine.LinkPredictTopK(q.h, q.r, k);
              if (!ValidStatus(r.status)) invalid_statuses.fetch_add(1);
              if (r.status == ServeStatus::kOk) {
                if (r.payload.topk.size() != k) malformed_topk.fetch_add(1);
                for (size_t j = 1; j < r.payload.topk.size(); ++j) {
                  if (r.payload.topk[j - 1].score < r.payload.topk[j].score) {
                    malformed_topk.fetch_add(1);
                  }
                }
              }
              break;
            }
            case 1: {
              Response r =
                  engine.Neighbors(products[rng.Uniform(products.size())]);
              if (!ValidStatus(r.status)) invalid_statuses.fetch_add(1);
              break;
            }
            case 2: {
              Response r =
                  engine.ConceptsOf(products[rng.Uniform(products.size())]);
              if (!ValidStatus(r.status)) invalid_statuses.fetch_add(1);
              break;
            }
            default: {
              int leaf = brands.leaves[rng.Uniform(brands.leaves.size())];
              Response r = engine.EntityLink(brands.nodes[leaf].name);
              if (!ValidStatus(r.status)) invalid_statuses.fetch_add(1);
              break;
            }
          }
        }
      });
    }
    threads.emplace_back([&, episode] {
      util::Rng rng(seed * 7919 + episode);
      for (size_t i = 0; i < kIters; ++i) {
        if (rng.Uniform(5) == 0) {
          // Live reload under fire: allowed to fail (checkpoint::read is
          // armed), never allowed to corrupt the serving model — it loads
          // into a fresh staging model, and readers pin the old generation
          // until their requests drain.
          util::FakeClock clock;
          util::RetryOptions retry;
          retry.clock = &clock;
          (void)ctx.ReloadModelFromCheckpoint(
              ckpt_path_, MakeStaging(seed * 31 + episode * 7 + i), retry);
        } else {
          rdf::UpdateBatch batch;
          size_t a = rng.Uniform(products.size());
          size_t b = rng.Uniform(products.size());
          batch.adds.push_back({products[a], rel, products[b]});
          // Apply may fail while WAL failpoints fire; a typed error with
          // an unchanged generation is the contract, so the status itself
          // is not asserted here.
          (void)live.Apply(batch);
        }
      }
    });
    for (std::thread& t : threads) t.join();

    // --- Faults clear; the system must converge back to healthy. ---
    util::failpoints::DisarmAll();
    bool recovered = false;
    for (int round = 0; round < 200 && !recovered; ++round) {
      // Recovery traffic: cold-ish queries admit half-open probes on every
      // endpoint breaker; an Apply gives the live layer a success to reset
      // its failure streaks and re-trigger compaction if one is owed.
      const kge::LpTriple& q = ds_->test[round % ds_->test.size()];
      (void)engine.LinkPredictTopK(q.h, q.r, 3 + round % 5);
      (void)engine.Neighbors(products[round % products.size()]);
      (void)engine.ConceptsOf(products[(round * 7) % products.size()]);
      // Unique mention per round: a guaranteed cache miss, so an open
      // EntityLink breaker always gets its half-open probe.
      int leaf = brands.leaves[round % brands.leaves.size()];
      (void)engine.EntityLink(brands.nodes[leaf].name + " #" +
                              std::to_string(round));
      rdf::UpdateBatch heal;
      heal.adds.push_back(
          {products[round % products.size()], rel, products[0]});
      (void)live.Apply(heal);
      if (ctx.reload_stats().last_failed) {
        util::FakeClock clock;
        util::RetryOptions retry;
        retry.clock = &clock;
        (void)ctx.ReloadModelFromCheckpoint(ckpt_path_,
                                            MakeStaging(++reload_seq), retry);
      }
      recovered = engine.ComputeHealth().overall() == Health::kHealthy;
      for (size_t e = 0; e < kNumEndpoints && recovered; ++e) {
        recovered = engine.breaker(static_cast<Endpoint>(e)).state() ==
                    util::CircuitBreaker::State::kClosed;
      }
      if (!recovered) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    live.WaitForCompaction();  // must return: compaction never wedges
    EXPECT_TRUE(recovered)
        << "breakers/health did not converge after faults cleared; json: "
        << engine.ComputeHealth().Json();

    // --- Cached answers must be byte-identical to recomputation. ---
    for (size_t i = 0; i < 10; ++i) {
      const kge::LpTriple& q = ds_->test[(episode * 13 + i) % ds_->test.size()];
      Response warm = engine.LinkPredictTopK(q.h, q.r, 5);
      Response cached = engine.LinkPredictTopK(q.h, q.r, 5);
      Response fresh = oracle.LinkPredictTopK(q.h, q.r, 5);
      ASSERT_EQ(warm.status, ServeStatus::kOk);
      ASSERT_EQ(cached.status, ServeStatus::kOk);
      ASSERT_EQ(fresh.status, ServeStatus::kOk);
      EXPECT_TRUE(cached.from_cache);
      ASSERT_EQ(cached.payload.topk.size(), fresh.payload.topk.size());
      for (size_t j = 0; j < fresh.payload.topk.size(); ++j) {
        EXPECT_EQ(cached.payload.topk[j].id, fresh.payload.topk[j].id);
        EXPECT_EQ(cached.payload.topk[j].score, fresh.payload.topk[j].score);
      }
      rdf::TermId p = products[(episode * 31 + i) % products.size()];
      Response warm_n = engine.Neighbors(p);
      Response cached_n = engine.Neighbors(p);
      Response fresh_n = oracle.Neighbors(p);
      ASSERT_EQ(warm_n.status, ServeStatus::kOk);
      ASSERT_EQ(cached_n.status, ServeStatus::kOk);
      EXPECT_EQ(cached_n.payload.triples, fresh_n.payload.triples);
    }
    EXPECT_EQ(invalid_statuses.load(), 0u);
    EXPECT_EQ(malformed_topk.load(), 0u);
  }

  // The metrics surface must survive the whole ordeal and report the
  // chaos it absorbed.
  std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"breakers\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"overall\":\"healthy\""), std::string::npos);
}

/// The PR 10 extension of the sweep: the same invariants, but the traffic
/// arrives over OBGWIRE1 sockets while the net::accept / net::read /
/// net::write failpoints fire probabilistically. The socket faults only
/// fragment I/O or drop fresh connections — they must NEVER surface as a
/// torn or corrupt frame on an established stream. Clients therefore
/// assert: every Recv either yields a whole valid frame or a clean EOF
/// (dropped connection), and after DisarmAll the server accepts again and
/// engine health converges back to green.
TEST_F(ChaosTest, NetFaultSweepFragmentsButNeverTearsFrames) {
  const uint64_t seed = SweepSeed();
  SCOPED_TRACE("OPENBG_CHAOS_SEED=" + std::to_string(seed));

  ServeContext::Bindings bindings;
  bindings.graph = &kg_->graph();
  bindings.ontology = &kg_->ontology();
  bindings.dataset = ds_;
  bindings.model = model_;
  bindings.mapper = mapper_;
  ServeContext ctx(bindings);
  QueryEngine engine(&ctx, EngineOptions{});

  net::ServerOptions sopts;
  sopts.event_threads = 2;
  sopts.worker_threads = 2;
  sopts.governor.default_tenant = {1e12, 1e12, net::Tier::kPaid};
  net::Server server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kEpisodes = 3;
  std::atomic<uint64_t> framing_errors{0};
  std::atomic<uint64_t> answered{0};
  uint64_t total_fires = 0;  // FireCount resets on DisarmAll; accumulate
  util::Rng sweep_rng(seed * 29);

  for (int episode = 0; episode < kEpisodes; ++episode) {
    SCOPED_TRACE("episode " + std::to_string(episode));
    const struct { const char* name; double p; } net_sites[] = {
        {net::kFpAccept, 0.30}, {net::kFpRead, 0.50}, {net::kFpWrite, 0.50},
    };
    for (const auto& site : net_sites) {
      util::failpoints::FailpointSpec spec;
      spec.probability = site.p;
      spec.seed = sweep_rng.Next();
      util::failpoints::ArmSpec(site.name, spec);
    }

    std::vector<std::thread> threads;
    for (size_t ti = 0; ti < 4; ++ti) {
      threads.emplace_back([&, ti, episode] {
        util::Rng rng(seed * 500009 + episode * 31 + ti);
        const std::vector<rdf::TermId>& products =
            kg_->assembly().product_terms;
        // Reconnect loop: net::accept may drop us at any time.
        for (int attempt = 0; attempt < 12; ++attempt) {
          net::Client::Options copts;
          copts.port = server.port();
          copts.tenant_id = static_cast<uint32_t>(ti + 1);
          net::Client client(copts);
          if (!client.Connect().ok()) continue;
          size_t inflight = 0;
          for (size_t i = 0; i < 20; ++i) {
            switch (rng.Uniform(3)) {
              case 0: {
                const kge::LpTriple& q =
                    ds_->test[rng.Uniform(ds_->test.size())];
                client.SendLinkPredict(q.h, q.r, 1 + rng.Uniform(8));
                break;
              }
              case 1:
                client.SendNeighbors(products[rng.Uniform(products.size())]);
                break;
              default:
                client.SendPing("chaos");
                break;
            }
            ++inflight;
          }
          if (!client.Flush().ok()) continue;  // connection died mid-send
          while (inflight > 0) {
            net::WireResponse resp;
            util::Status s = client.Recv(&resp);
            if (!s.ok()) {
              // A dropped connection reads as clean EOF. Anything about
              // framing/CRC means a torn frame escaped the server.
              if (s.message().find("framing") != std::string::npos ||
                  s.message().find("crc") != std::string::npos ||
                  s.message().find("malformed") != std::string::npos) {
                framing_errors.fetch_add(1);
              }
              break;
            }
            answered.fetch_add(1);
            --inflight;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    total_fires += util::failpoints::FireCount(net::kFpAccept) +
                   util::failpoints::FireCount(net::kFpRead) +
                   util::failpoints::FireCount(net::kFpWrite);
    util::failpoints::DisarmAll();

    // Post-disarm: a fresh connection serves perfectly and health greens.
    net::Client::Options copts;
    copts.port = server.port();
    copts.tenant_id = 99;
    net::Client probe(copts);
    ASSERT_TRUE(probe.Connect().ok());
    const kge::LpTriple& q = ds_->test[episode];
    uint64_t id1 = probe.SendLinkPredict(q.h, q.r, 5);
    uint64_t id2 = probe.SendPing("healed");
    ASSERT_TRUE(probe.Flush().ok());
    for (int i = 0; i < 2; ++i) {
      net::WireResponse resp;
      ASSERT_TRUE(probe.Recv(&resp).ok());
      EXPECT_TRUE(resp.request_id == id1 || resp.request_id == id2);
      EXPECT_EQ(resp.status, net::WireStatus::kOk);
    }
    EXPECT_EQ(engine.ComputeHealth().overall(), Health::kHealthy);
  }

  EXPECT_EQ(framing_errors.load(), 0u)
      << "socket faults must fragment, never tear frames";
  EXPECT_GT(answered.load(), 0u) << "no request survived the sweep";
  EXPECT_GT(total_fires, 0u) << "the sweep never exercised a net site";
  server.Stop();
}

}  // namespace
}  // namespace openbg::serve
