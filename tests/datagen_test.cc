#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>

#include "datagen/name_gen.h"
#include "datagen/world.h"
#include "util/rng.h"

namespace openbg::datagen {
namespace {

WorldSpec SmallSpec(uint64_t seed = 7) {
  WorldSpec spec;
  spec.seed = seed;
  spec.scale = 0.1;
  spec.num_products = 300;
  return spec;
}

TEST(NameGenTest, WordsUnique) {
  util::Rng rng(3);
  NameGen names(&rng);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(seen.insert(names.Word(2)).second);
  }
}

TEST(NameGenTest, ProperNameCapitalized) {
  util::Rng rng(5);
  NameGen names(&rng);
  std::string n = names.ProperName(2);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(n[0])));
}

TEST(NameGenTest, MisspellChangesString) {
  util::Rng rng(7);
  NameGen names(&rng);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    std::string w = names.Word(3);
    if (names.Misspell(w) != w) ++changed;
  }
  EXPECT_GT(changed, 40);
}

TEST(NameGenTest, SpecValueShape) {
  util::Rng rng(9);
  NameGen names(&rng);
  for (int i = 0; i < 20; ++i) {
    std::string v = names.SpecValue();
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(v[0])));
  }
}

TEST(WorldGenTest, DeterministicForSeed) {
  World a = GenerateWorld(SmallSpec(42));
  World b = GenerateWorld(SmallSpec(42));
  ASSERT_EQ(a.products.size(), b.products.size());
  for (size_t i = 0; i < a.products.size(); ++i) {
    EXPECT_EQ(a.products[i].title_tokens, b.products[i].title_tokens);
    EXPECT_EQ(a.products[i].category, b.products[i].category);
  }
  EXPECT_EQ(a.categories.nodes.size(), b.categories.nodes.size());
}

TEST(WorldGenTest, SeedsProduceDifferentWorlds) {
  World a = GenerateWorld(SmallSpec(1));
  World b = GenerateWorld(SmallSpec(2));
  EXPECT_NE(a.products[0].title_tokens, b.products[0].title_tokens);
}

TEST(WorldGenTest, TaxonomiesWellFormed) {
  World w = GenerateWorld(SmallSpec());
  for (ontology::CoreKind kind : ontology::kAllCoreKinds) {
    const TaxonomyData& tax = w.TaxonomyFor(kind);
    ASSERT_FALSE(tax.nodes.empty());
    for (size_t i = 0; i < tax.nodes.size(); ++i) {
      const TaxonomyNode& n = tax.nodes[i];
      if (n.parent >= 0) {
        ASSERT_LT(static_cast<size_t>(n.parent), i)
            << "parents precede children";
        EXPECT_EQ(tax.nodes[n.parent].level + 1, n.level);
      } else {
        EXPECT_EQ(n.level, 1);
      }
    }
    for (int leaf : tax.leaves) {
      EXPECT_TRUE(tax.nodes[leaf].children.empty());
    }
  }
}

TEST(WorldGenTest, ScaleGrowsCounts) {
  WorldSpec small = SmallSpec();
  WorldSpec bigger = SmallSpec();
  bigger.scale = 0.3;
  World a = GenerateWorld(small);
  World b = GenerateWorld(bigger);
  EXPECT_GT(b.categories.nodes.size(), a.categories.nodes.size());
  EXPECT_GT(b.brands.nodes.size(), a.brands.nodes.size());
  EXPECT_GT(b.attribute_types.size(), a.attribute_types.size());
  // num_products is explicit, not scaled.
  EXPECT_EQ(b.products.size(), a.products.size());
}

class ProductInvariantsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProductInvariantsTest, AllReferencesValid) {
  World w = GenerateWorld(SmallSpec(GetParam()));
  ASSERT_FALSE(w.products.empty());
  size_t with_image = 0, with_brand = 0;
  for (const Product& p : w.products) {
    // Category must be a leaf.
    ASSERT_GE(p.category, 0);
    EXPECT_TRUE(w.categories.nodes[p.category].children.empty());
    if (p.brand >= 0) {
      ++with_brand;
      ASSERT_LT(static_cast<size_t>(p.brand), w.brands.nodes.size());
      EXPECT_FALSE(p.brand_mention.empty());
    }
    for (int s : p.scenes) {
      ASSERT_LT(static_cast<size_t>(s), w.scenes.nodes.size());
    }
    for (auto [attr, value] : p.attributes) {
      ASSERT_LT(attr, w.attribute_types.size());
      ASSERT_LT(value, w.attribute_types[attr].values.size());
    }
    // Title spans must index real tokens and carry the attribute value.
    for (const SpanAnnotation& sp : p.title_spans) {
      ASSERT_LT(sp.begin, sp.end);
      ASSERT_LE(sp.end, p.title_tokens.size());
      ASSERT_LT(sp.type, w.attribute_types.size());
    }
    EXPECT_EQ(p.title_spans.size(), p.attributes.size());
    EXPECT_FALSE(p.short_title_tokens.empty());
    if (!p.image.empty()) {
      ++with_image;
      EXPECT_EQ(p.image.size(), w.spec.image_dim);
    }
    // Reviews: template arithmetic must hold (7 tokens per opinion).
    EXPECT_EQ(p.review_tokens.size(), p.review_triples.size() * 7);
  }
  // Image/brand fractions near their configured rates.
  double img_frac =
      static_cast<double>(with_image) / static_cast<double>(w.products.size());
  EXPECT_NEAR(img_frac, w.spec.image_fraction, 0.1);
  double brand_frac =
      static_cast<double>(with_brand) / static_cast<double>(w.products.size());
  EXPECT_NEAR(brand_frac, w.spec.brand_fraction, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProductInvariantsTest,
                         ::testing::Values(1, 7, 13, 99));

TEST(WorldGenTest, TitleSpansPointAtAttributeValues) {
  World w = GenerateWorld(SmallSpec());
  for (const Product& p : w.products) {
    for (size_t k = 0; k < p.title_spans.size(); ++k) {
      const SpanAnnotation& sp = p.title_spans[k];
      auto [attr, value] = p.attributes[k];
      EXPECT_EQ(sp.type, attr);
      EXPECT_EQ(p.title_tokens[sp.begin],
                w.attribute_types[attr].values[value]);
    }
  }
}

TEST(WorldGenTest, CategoryImagePrototypesSeparateCategories) {
  // Products of the same category should have image vectors closer to
  // their own prototype than to a different category's prototype (the
  // signal multimodal link prediction exploits).
  WorldSpec spec = SmallSpec();
  spec.num_products = 500;
  World w = GenerateWorld(spec);
  size_t checked = 0, closer = 0;
  for (const Product& p : w.products) {
    if (p.image.empty()) continue;
    const auto& own = w.category_image_prototypes[p.category];
    // Find a different category with a prototype.
    int other = -1;
    for (int leaf : w.categories.leaves) {
      if (leaf != p.category) {
        other = leaf;
        break;
      }
    }
    ASSERT_GE(other, 0);
    const auto& foreign = w.category_image_prototypes[other];
    double d_own = 0, d_foreign = 0;
    for (size_t i = 0; i < p.image.size(); ++i) {
      d_own += (p.image[i] - own[i]) * (p.image[i] - own[i]);
      d_foreign +=
          (p.image[i] - foreign[i]) * (p.image[i] - foreign[i]);
    }
    ++checked;
    if (d_own < d_foreign) ++closer;
  }
  ASSERT_GT(checked, 0u);
  EXPECT_GT(static_cast<double>(closer) / checked, 0.9);
}

TEST(WorldGenTest, ZipfCategoryPopularityLongTail) {
  WorldSpec spec = SmallSpec();
  spec.num_products = 2000;
  World w = GenerateWorld(spec);
  std::vector<size_t> counts(w.categories.nodes.size(), 0);
  for (const Product& p : w.products) counts[p.category] += 1;
  std::sort(counts.rbegin(), counts.rend());
  // Head category much more popular than median category.
  EXPECT_GT(counts[0], counts[counts.size() / 2] * 3);
}

}  // namespace
}  // namespace openbg::datagen
