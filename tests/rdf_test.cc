#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "util/rng.h"

namespace openbg::rdf {
namespace {

TEST(TermDictTest, InternsAndDedupes) {
  TermDict dict;
  TermId a = dict.AddIri("http://x/a");
  TermId b = dict.AddIri("http://x/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.AddIri("http://x/a"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Text(a), "http://x/a");
}

TEST(TermDictTest, IriAndLiteralAreDistinctKeySpaces) {
  TermDict dict;
  TermId iri = dict.AddIri("x");
  TermId lit = dict.AddLiteral("x");
  EXPECT_NE(iri, lit);
  EXPECT_TRUE(dict.IsIri(iri));
  EXPECT_TRUE(dict.IsLiteral(lit));
}

TEST(TermDictTest, FindWithoutIntern) {
  TermDict dict;
  EXPECT_EQ(dict.FindIri("missing"), kInvalidTerm);
  TermId a = dict.AddLiteral("v");
  EXPECT_EQ(dict.FindLiteral("v"), a);
  EXPECT_EQ(dict.FindIri("v"), kInvalidTerm);
  EXPECT_EQ(dict.size(), 1u);
}

constexpr TermId A = TriplePattern::kAny;

class TripleStoreTest : public ::testing::Test {
 protected:
  TripleStoreTest() {
    s = d.AddIri("s");
    p = d.AddIri("p");
    o = d.AddIri("o");
    s2 = d.AddIri("s2");
    p2 = d.AddIri("p2");
    o2 = d.AddIri("o2");
  }
  TermDict d;
  TripleStore store;
  TermId s, p, o, s2, p2, o2;
};

TEST_F(TripleStoreTest, AddAndContains) {
  EXPECT_TRUE(store.Add(s, p, o));
  EXPECT_FALSE(store.Add(s, p, o)) << "duplicate must be rejected";
  EXPECT_TRUE(store.Contains(s, p, o));
  EXPECT_FALSE(store.Contains(s, p, o2));
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(TripleStoreTest, PatternMatching) {
  store.Add(s, p, o);
  store.Add(s, p, o2);
  store.Add(s, p2, o);
  store.Add(s2, p, o);

  EXPECT_EQ(store.Match({s, A, A}).size(), 3u);
  EXPECT_EQ(store.Match({s, p, A}).size(), 2u);
  EXPECT_EQ(store.Match({A, p, o}).size(), 2u);
  EXPECT_EQ(store.Match({A, A, o}).size(), 3u);
  EXPECT_EQ(store.Match({A, A, A}).size(), 4u);
  EXPECT_EQ(store.Match({s, p, o}).size(), 1u);
  EXPECT_EQ(store.Match({s2, p2, A}).size(), 0u);
}

TEST_F(TripleStoreTest, CountAndHelpers) {
  store.Add(s, p, o);
  store.Add(s, p, o2);
  store.Add(s2, p, o);
  EXPECT_EQ(store.CountMatches({s, p, A}), 2u);
  std::vector<TermId> objs = store.Objects(s, p);
  EXPECT_EQ(objs.size(), 2u);
  std::vector<TermId> subs = store.Subjects(p, o);
  EXPECT_EQ(subs.size(), 2u);
  EXPECT_NE(store.FirstObject(s, p), kInvalidTerm);
  EXPECT_EQ(store.FirstObject(o, p), kInvalidTerm);
}

TEST_F(TripleStoreTest, QueriesInterleavedWithInserts) {
  store.Add(s, p, o);
  EXPECT_EQ(store.CountMatches({s, A, A}), 1u);
  store.Add(s, p2, o2);  // dirties indexes after a sort
  EXPECT_EQ(store.CountMatches({s, A, A}), 2u);
  store.Add(s2, p, o);
  EXPECT_EQ(store.CountMatches({A, p, A}), 2u);
}

TEST_F(TripleStoreTest, DistinctPredicates) {
  store.Add(s, p, o);
  store.Add(s2, p, o2);
  store.Add(s, p2, o);
  std::vector<TermId> preds = store.DistinctPredicates();
  EXPECT_EQ(preds.size(), 2u);
}

TEST_F(TripleStoreTest, ForEachMatchEarlyStop) {
  store.Add(s, p, o);
  store.Add(s, p, o2);
  int seen = 0;
  store.ForEachMatch({s, p, A}, [&seen](const Triple&) {
    ++seen;
    return false;  // stop after the first
  });
  EXPECT_EQ(seen, 1);
}

TEST_F(TripleStoreTest, ForEachMatchFnMatchesWrapper) {
  store.Add(s, p, o);
  store.Add(s, p2, o2);
  store.Add(s2, p, o);
  const TriplePattern patterns[] = {
      {s, A, A}, {A, p, A}, {A, A, o}, {s, p, A}, {A, p, o}, {A, A, A}};
  for (const TriplePattern& pattern : patterns) {
    std::vector<Triple> via_fn, via_wrapper;
    store.ForEachMatchFn(pattern, [&via_fn](const Triple& t) {
      via_fn.push_back(t);
      return true;
    });
    store.ForEachMatch(pattern, [&via_wrapper](const Triple& t) {
      via_wrapper.push_back(t);
      return true;
    });
    EXPECT_EQ(via_fn, via_wrapper);
    EXPECT_EQ(via_fn.size(), store.CountMatches(pattern));
  }
  // Early stop works through the template too.
  int seen = 0;
  store.ForEachMatchFn({A, p, A}, [&seen](const Triple&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

TEST_F(TripleStoreTest, SealIndexesPreservesQueryResults) {
  store.Add(s, p, o);
  store.Add(s, p, o2);
  store.Add(s2, p2, o);
  store.SealIndexes();
  EXPECT_EQ(store.CountMatches({s, A, A}), 2u);
  EXPECT_EQ(store.CountMatches({A, p, A}), 2u);
  EXPECT_EQ(store.CountMatches({A, A, o}), 2u);
  // Sealing is idempotent, and later inserts re-dirty correctly.
  store.SealIndexes();
  store.Add(s2, p, o2);
  EXPECT_EQ(store.CountMatches({A, p, A}), 3u);
}

// A sealed store must serve many readers at once: every pattern family
// (SPO / POS / OSP prefix plus full scan) hammered from 8 threads, each
// checking against the counts a serial pass computed first.
TEST(TripleStoreConcurrencyTest, SealedStoreServesEightReaders) {
  TermDict d;
  TripleStore store;
  util::Rng rng(97);
  std::vector<TermId> subjects, predicates, objects;
  for (int i = 0; i < 40; ++i) {
    subjects.push_back(d.AddIri("s" + std::to_string(i)));
    objects.push_back(d.AddIri("o" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    predicates.push_back(d.AddIri("p" + std::to_string(i)));
  }
  for (int i = 0; i < 2000; ++i) {
    store.Add(subjects[rng.Uniform(subjects.size())],
              predicates[rng.Uniform(predicates.size())],
              objects[rng.Uniform(objects.size())]);
  }
  store.SealIndexes();

  std::vector<size_t> expected_s(subjects.size());
  std::vector<size_t> expected_p(predicates.size());
  for (size_t i = 0; i < subjects.size(); ++i) {
    expected_s[i] = store.CountMatches({subjects[i], A, A});
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    expected_p[i] = store.CountMatches({A, predicates[i], A});
  }
  const size_t total = store.CountMatches({A, A, A});

  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 8; ++w) {
    readers.emplace_back([&, w] {
      for (int round = 0; round < 50; ++round) {
        size_t si = (w + round) % subjects.size();
        size_t pi = (w + round) % predicates.size();
        if (store.CountMatches({subjects[si], A, A}) != expected_s[si] ||
            store.CountMatches({A, predicates[pi], A}) != expected_p[pi] ||
            store.CountMatches({A, A, A}) != total ||
            store.Objects(subjects[si], predicates[pi]).size() >
                expected_s[si]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Without SealIndexes, the first queries after inserts race to build the
// indexes; the mutex-guarded lazy path must keep them correct (and clean
// under -DOPENBG_SANITIZE=thread).
TEST(TripleStoreConcurrencyTest, LazyIndexBuildToleratesConcurrentReaders) {
  TermDict d;
  TripleStore store;
  TermId p = d.AddIri("p");
  std::vector<TermId> subjects;
  for (int i = 0; i < 64; ++i) {
    subjects.push_back(d.AddIri("s" + std::to_string(i)));
  }
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 8; ++j) {
      store.Add(subjects[i], p, d.AddIri("o" + std::to_string(j)));
    }
  }
  // No seal: all 8 threads' first queries hit the dirty-index slow path.
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 8; ++w) {
    readers.emplace_back([&] {
      for (size_t i = 0; i < subjects.size(); ++i) {
        if (store.CountMatches({subjects[i], A, A}) != 8u ||
            store.CountMatches({A, p, A}) != 64u * 8u) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(VocabTest, InternsW3cTerms) {
  TermDict dict;
  Vocab v(&dict);
  EXPECT_EQ(dict.Text(v.rdf_type), iri::kRdfType);
  EXPECT_EQ(dict.Text(v.skos_broader), iri::kSkosBroader);
  EXPECT_NE(v.rdfs_sub_class_of, v.rdfs_sub_property_of);
}

TEST(NTriplesTest, EscapeRoundTrip) {
  std::string raw = "line\"with\\stuff\nand\ttabs";
  std::string escaped = EscapeLiteral(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  std::string back;
  ASSERT_TRUE(UnescapeLiteral(escaped, &back));
  EXPECT_EQ(back, raw);
}

TEST(NTriplesTest, BadEscapeRejected) {
  std::string out;
  EXPECT_FALSE(UnescapeLiteral("bad\\q", &out));
  EXPECT_FALSE(UnescapeLiteral("trailing\\", &out));
}

TEST(NTriplesTest, UnicodeEscapeRoundTrip) {
  std::string out;
  ASSERT_TRUE(UnescapeLiteral("snowman \\u2603 ok", &out));
  EXPECT_EQ(out, "snowman ☃ ok");
  out.clear();
  ASSERT_TRUE(UnescapeLiteral("astral \\U0001F600", &out));
  EXPECT_EQ(out, "astral \U0001F600");
  out.clear();
  ASSERT_TRUE(UnescapeLiteral("ascii \\u0041", &out));
  EXPECT_EQ(out, "ascii A");
}

TEST(NTriplesTest, AdversarialEscapesRejected) {
  std::string out;
  // Short / non-hex \u forms.
  EXPECT_FALSE(UnescapeLiteral("\\u123", &out));
  EXPECT_FALSE(UnescapeLiteral("\\u12", &out));
  EXPECT_FALSE(UnescapeLiteral("\\u", &out));
  EXPECT_FALSE(UnescapeLiteral("\\uZZZZ", &out));
  EXPECT_FALSE(UnescapeLiteral("\\u12G4", &out));
  EXPECT_FALSE(UnescapeLiteral("\\U0001F60", &out));
  EXPECT_FALSE(UnescapeLiteral("\\U0001F60X", &out));
  // Surrogate halves and out-of-range code points are not scalar values.
  EXPECT_FALSE(UnescapeLiteral("\\uD800", &out));
  EXPECT_FALSE(UnescapeLiteral("\\uDFFF", &out));
  EXPECT_FALSE(UnescapeLiteral("\\U00110000", &out));
  EXPECT_FALSE(UnescapeLiteral("\\UFFFFFFFF", &out));
}

TEST(NTriplesTest, ControlCharacterRoundTrip) {
  // Embedded NUL and other C0 controls survive a write/read cycle via
  // \u00XX escapes.
  std::string raw("nul\0bell\x07end", 12);
  std::string escaped = EscapeLiteral(raw);
  EXPECT_EQ(escaped.find('\0'), std::string::npos);
  std::string back;
  ASSERT_TRUE(UnescapeLiteral(escaped, &back));
  EXPECT_EQ(back, raw);
}

TEST(NTriplesTest, FileRoundTrip) {
  Graph g;
  TermId s = g.dict.AddIri("http://x/s");
  TermId p = g.dict.AddIri("http://x/p");
  TermId lit = g.dict.AddLiteral("value with \"quotes\" and\nnewline");
  TermId o = g.dict.AddIri("http://x/o");
  g.store.Add(s, p, o);
  g.store.Add(s, p, lit);

  std::string path = ::testing::TempDir() + "/openbg_rdf_test.nt";
  ASSERT_TRUE(WriteNTriples(g.store, g.dict, path).ok());

  Graph g2;
  ASSERT_TRUE(ReadNTriples(path, &g2.dict, &g2.store).ok());
  EXPECT_EQ(g2.store.size(), 2u);
  TermId s2 = g2.dict.FindIri("http://x/s");
  TermId p2 = g2.dict.FindIri("http://x/p");
  TermId lit2 = g2.dict.FindLiteral("value with \"quotes\" and\nnewline");
  ASSERT_NE(s2, kInvalidTerm);
  ASSERT_NE(lit2, kInvalidTerm);
  EXPECT_TRUE(g2.store.Contains(s2, p2, lit2));
  std::remove(path.c_str());
}

TEST(NTriplesTest, MalformedLineReported) {
  std::string path = ::testing::TempDir() + "/openbg_rdf_bad.nt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("<a> <b> <c> .\nnot a triple\n", f);
    fclose(f);
  }
  Graph g;
  util::Status st = ReadNTriples(path, &g.dict, &g.store);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find(":2"), std::string::npos)
      << "error should name line 2: " << st.ToString();
  std::remove(path.c_str());
}

TEST(NTriplesTest, LenientReadSkipsMalformedLinesWithCorrectCounts) {
  std::string path = ::testing::TempDir() + "/openbg_rdf_lenient.nt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("<a> <b> <c> .\n"
          "not a triple\n"
          "<d> <e> \"lit\" .\n"
          "<f> <g> <h>\n"            // missing terminator
          "\"lit\" <p> <o> .\n"      // literal subject
          "<i> <j> <k> .\n",
          f);
    fclose(f);
  }
  Graph g;
  util::ParseOptions lenient;
  lenient.policy = util::ParsePolicy::kSkipAndReport;
  util::ParseReport report;
  ASSERT_TRUE(
      ReadNTriples(path, &g.dict, &g.store, lenient, &report).ok());
  EXPECT_EQ(g.store.size(), 3u);
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.skipped, 3u);
  ASSERT_EQ(report.error_samples.size(), 3u);
  EXPECT_EQ(report.error_samples[0].line, 2u);
  EXPECT_EQ(report.error_samples[1].line, 4u);
  EXPECT_EQ(report.error_samples[2].line, 5u);
  // Skipped lines intern nothing: no term from a bad line pollutes the
  // dictionary.
  EXPECT_EQ(g.dict.FindIri("f"), kInvalidTerm);
  EXPECT_EQ(g.dict.FindIri("p"), kInvalidTerm);
  EXPECT_NE(g.dict.FindIri("i"), kInvalidTerm);

  // A mostly-garbage file must not "load successfully": max_errors caps it.
  util::ParseOptions capped = lenient;
  capped.max_errors = 2;
  Graph g2;
  util::ParseReport capped_report;
  EXPECT_FALSE(
      ReadNTriples(path, &g2.dict, &g2.store, capped, &capped_report).ok());
  std::remove(path.c_str());
}

TEST(NTriplesTest, CommentsAndBlankLinesSkipped) {
  std::string path = ::testing::TempDir() + "/openbg_rdf_comment.nt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("# header comment\n\n<a> <b> \"lit\" .\n", f);
    fclose(f);
  }
  Graph g;
  ASSERT_TRUE(ReadNTriples(path, &g.dict, &g.store).ok());
  EXPECT_EQ(g.store.size(), 1u);
  std::remove(path.c_str());
}

// Property: for any handful of randomly generated triples, every bound
// pattern returns exactly the subset matching it.
class TripleStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TripleStorePropertyTest, PatternsAgreeWithLinearScan) {
  util::Rng rng(GetParam());
  TermDict dict;
  TripleStore store;
  std::vector<Triple> all;
  for (int i = 0; i < 200; ++i) {
    Triple t{static_cast<TermId>(dict.AddIri("s" + std::to_string(
                 rng.Uniform(10)))),
             static_cast<TermId>(dict.AddIri("p" + std::to_string(
                 rng.Uniform(5)))),
             static_cast<TermId>(dict.AddIri("o" + std::to_string(
                 rng.Uniform(10))))};
    if (store.Add(t)) all.push_back(t);
  }
  for (int trial = 0; trial < 30; ++trial) {
    TriplePattern pat;
    if (rng.Bernoulli(0.5)) pat.s = all[rng.Uniform(all.size())].s;
    if (rng.Bernoulli(0.5)) pat.p = all[rng.Uniform(all.size())].p;
    if (rng.Bernoulli(0.5)) pat.o = all[rng.Uniform(all.size())].o;
    size_t expected = 0;
    for (const Triple& t : all) {
      bool m = (pat.s == TriplePattern::kAny || pat.s == t.s) &&
               (pat.p == TriplePattern::kAny || pat.p == t.p) &&
               (pat.o == TriplePattern::kAny || pat.o == t.o);
      if (m) ++expected;
    }
    EXPECT_EQ(store.CountMatches(pat), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TripleStoreIndexTest, SubjectObjectBoundUsesTwoComponentOspPrefix) {
  // Regression for the missing (o, s) OSP prefix: an (s, ?, o) pattern used
  // to fall back to the subject's whole SPO range and filter every triple
  // of a high-degree subject. The candidate range must be exactly the
  // triples sharing BOTH bound components.
  constexpr TermId kAny = TriplePattern::kAny;
  TripleStore store;
  for (TermId p = 10; p < 110; ++p) store.Add(1, p, 200 + p);  // hub subject
  store.Add(1, 500, 999);
  store.Add(1, 501, 999);
  store.Add(2, 500, 999);
  store.SealIndexes();

  TriplePattern pat{1, kAny, 999};
  EXPECT_EQ(store.CountMatches(pat), 2u);
  EXPECT_EQ(store.ScanCost(pat), 2u)
      << "(s, ?, o) must walk the (o, s) OSP prefix, not the subject range";
  // The subject's full range really is the expensive one we avoided.
  EXPECT_EQ(store.ScanCost(TriplePattern{1, kAny, kAny}), 102u);
  EXPECT_EQ(store.ScanCost(TriplePattern{kAny, kAny, 999}), 3u);
}

TEST(TripleStoreIndexTest, ScanCostBoundsHoldOnRandomData) {
  // Parity property: for every pattern shape, the candidate range covers
  // all matches (cost >= matches), and a two-bound pattern never scans
  // more than either of its one-bound relaxations — which fails if any
  // two-component prefix is missing from index selection.
  constexpr TermId kAny = TriplePattern::kAny;
  util::Rng rng(99);
  TripleStore store;
  for (int i = 0; i < 300; ++i) {
    store.Add(static_cast<TermId>(1 + rng.Uniform(12)),
              static_cast<TermId>(100 + rng.Uniform(6)),
              static_cast<TermId>(200 + rng.Uniform(12)));
  }
  store.SealIndexes();
  for (int trial = 0; trial < 60; ++trial) {
    TriplePattern pat;
    if (rng.Bernoulli(0.6)) pat.s = static_cast<TermId>(1 + rng.Uniform(12));
    if (rng.Bernoulli(0.6)) pat.p = static_cast<TermId>(100 + rng.Uniform(6));
    if (rng.Bernoulli(0.6)) pat.o = static_cast<TermId>(200 + rng.Uniform(12));
    size_t cost = store.ScanCost(pat);
    EXPECT_GE(cost, store.CountMatches(pat));
    EXPECT_LE(cost, store.size());
    int bound = (pat.s != kAny) + (pat.p != kAny) + (pat.o != kAny);
    if (bound == 2) {
      if (pat.s != kAny) {
        EXPECT_LE(cost, store.ScanCost(TriplePattern{pat.s, kAny, kAny}));
      }
      if (pat.p != kAny) {
        EXPECT_LE(cost, store.ScanCost(TriplePattern{kAny, pat.p, kAny}));
      }
      if (pat.o != kAny) {
        EXPECT_LE(cost, store.ScanCost(TriplePattern{kAny, kAny, pat.o}));
      }
    }
  }
}

}  // namespace
}  // namespace openbg::rdf
