// Tests for the src/net/ socket front-end: OBGWIRE1 codec roundtrips and
// corruption handling, TenantGovernor token-bucket arithmetic under
// util::FakeClock, and end-to-end socket serving — pipelined mixed-tenant
// traffic byte-identical to in-process engine answers, out-of-order
// completion, per-tenant admission, mid-run canary promotion, version
// negotiation, graceful shutdown with clean EOFs, and the net::*
// failpoints.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/openbg.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "net/client.h"
#include "net/server.h"
#include "net/tenant_governor.h"
#include "net/wire.h"
#include "serve/canary.h"
#include "serve/engine.h"
#include "util/clock.h"
#include "util/fault_injection.h"

namespace openbg::net {
namespace {

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

TEST(WireTest, HeaderRoundTrip) {
  FrameHeader h;
  h.flags = kFlagResponse;
  h.tag = static_cast<uint16_t>(Tag::kLinkPredict);
  h.request_id = 0x1122334455667788ull;
  h.tenant_id = 42;
  h.payload_len = 123;
  h.payload_crc = 0xDEADBEEF;
  uint8_t buf[kHeaderSize];
  EncodeHeader(h, buf);
  FrameHeader out;
  ASSERT_EQ(ParseHeader(buf, &out), HeaderParse::kOk);
  EXPECT_EQ(out.version, kWireVersion);
  EXPECT_EQ(out.flags, kFlagResponse);
  EXPECT_EQ(out.tag, h.tag);
  EXPECT_EQ(out.request_id, h.request_id);
  EXPECT_EQ(out.tenant_id, h.tenant_id);
  EXPECT_EQ(out.payload_len, h.payload_len);
  EXPECT_EQ(out.payload_crc, h.payload_crc);
}

TEST(WireTest, HeaderRejectsCorruption) {
  FrameHeader h;
  h.request_id = 9;
  uint8_t buf[kHeaderSize];
  EncodeHeader(h, buf);
  FrameHeader out;

  uint8_t bad_magic[kHeaderSize];
  std::copy(buf, buf + kHeaderSize, bad_magic);
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(ParseHeader(bad_magic, &out), HeaderParse::kBadMagic);

  // Every single-bit flip in the CRC-covered region must be caught.
  for (size_t byte = 4; byte < 28; byte += 5) {
    uint8_t flipped[kHeaderSize];
    std::copy(buf, buf + kHeaderSize, flipped);
    flipped[byte] ^= 0x04;
    FrameHeader parsed;
    HeaderParse hp = ParseHeader(flipped, &parsed);
    EXPECT_TRUE(hp == HeaderParse::kBadCrc || hp == HeaderParse::kBadVersion)
        << "flip at byte " << byte << " undetected";
  }

  FrameHeader big;
  big.payload_len = kMaxPayload + 1;
  uint8_t big_buf[kHeaderSize];
  EncodeHeader(big, big_buf);
  EXPECT_EQ(ParseHeader(big_buf, &out), HeaderParse::kTooLarge);

  // Unsupported version: header is intact, fields must survive so the
  // server can answer the right request id.
  FrameHeader v2;
  v2.version = kWireVersion + 1;
  v2.request_id = 77;
  uint8_t v2_buf[kHeaderSize];
  EncodeHeader(v2, v2_buf);
  EXPECT_EQ(ParseHeader(v2_buf, &out), HeaderParse::kBadVersion);
  EXPECT_EQ(out.request_id, 77u);
}

TEST(WireTest, RequestPayloadRoundTrips) {
  WireRequest in;
  in.tag = Tag::kLinkPredict;
  in.h = 12;
  in.r = 3;
  in.k = 10;
  in.deadline_us = 5000;
  WireRequest out;
  ASSERT_TRUE(
      DecodeRequestPayload(in.tag, EncodeRequestPayload(in), &out));
  EXPECT_EQ(out.h, 12u);
  EXPECT_EQ(out.r, 3u);
  EXPECT_EQ(out.k, 10u);
  EXPECT_EQ(out.deadline_us, 5000u);

  in = WireRequest{};
  in.tag = Tag::kNeighbors;
  in.entity = 99;
  in.relation = 0xFFFFFFFFu;
  ASSERT_TRUE(
      DecodeRequestPayload(in.tag, EncodeRequestPayload(in), &out));
  EXPECT_EQ(out.entity, 99u);
  EXPECT_EQ(out.relation, 0xFFFFFFFFu);

  in = WireRequest{};
  in.tag = Tag::kEntityLink;
  in.text = "Brand Seventeen";
  ASSERT_TRUE(
      DecodeRequestPayload(in.tag, EncodeRequestPayload(in), &out));
  EXPECT_EQ(out.text, "Brand Seventeen");

  // Truncated fixed-size payloads are malformed, not misparsed.
  EXPECT_FALSE(DecodeRequestPayload(Tag::kLinkPredict, "\x01\x02", &out));
  EXPECT_FALSE(DecodeRequestPayload(Tag::kConceptsOf, "", &out));
  // Trailing garbage after a fixed-size payload is also malformed.
  std::string padded = EncodeRequestPayload(WireRequest{Tag::kConceptsOf});
  padded.push_back('x');
  EXPECT_FALSE(DecodeRequestPayload(Tag::kConceptsOf, padded, &out));
}

TEST(WireTest, ResponsePayloadRoundTrips) {
  serve::Response resp;
  resp.status = serve::ServeStatus::kOk;
  resp.from_cache = true;
  resp.payload.topk = {{3, 0.75f}, {9, -1.25f}};
  WireResponse out;
  ASSERT_TRUE(DecodeResponsePayload(
      Tag::kLinkPredict, EncodeResponsePayload(Tag::kLinkPredict, resp),
      &out));
  EXPECT_EQ(out.status, WireStatus::kOk);
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.payload.topk, resp.payload.topk);

  serve::Response links;
  links.payload.link.node = 17;
  links.payload.link.kind = construction::SchemaMapper::MatchKind::kFuzzy;
  links.payload.link.similarity = 0.625;
  ASSERT_TRUE(DecodeResponsePayload(
      Tag::kEntityLink, EncodeResponsePayload(Tag::kEntityLink, links),
      &out));
  EXPECT_EQ(out.payload.link.node, 17);
  EXPECT_EQ(out.payload.link.kind,
            construction::SchemaMapper::MatchKind::kFuzzy);
  EXPECT_EQ(out.payload.link.similarity, 0.625);

  serve::Response triples;
  triples.payload.triples = {{1, 2, 3}, {4, 5, 6}};
  ASSERT_TRUE(DecodeResponsePayload(
      Tag::kNeighbors, EncodeResponsePayload(Tag::kNeighbors, triples),
      &out));
  EXPECT_EQ(out.payload.triples, triples.payload.triples);

  // Status-only refusals and the version advertisement.
  ASSERT_TRUE(DecodeResponsePayload(
      Tag::kLinkPredict, EncodeStatusPayload(WireStatus::kShed), &out));
  EXPECT_EQ(out.status, WireStatus::kShed);
  ASSERT_TRUE(DecodeResponsePayload(
      Tag::kPing, EncodeStatusPayload(WireStatus::kBadVersion), &out));
  EXPECT_EQ(out.status, WireStatus::kBadVersion);
  EXPECT_EQ(out.server_version, kWireVersion);
}

TEST(WireTest, PayloadCrcCatchesFlips) {
  WireRequest req;
  req.tag = Tag::kEntityLink;
  req.request_id = 5;
  req.text = "payload under test";
  std::string frame;
  AppendRequestFrame(&frame, req);
  FrameHeader h;
  ASSERT_EQ(ParseHeader(reinterpret_cast<const uint8_t*>(frame.data()), &h),
            HeaderParse::kOk);
  std::string payload = frame.substr(kHeaderSize);
  EXPECT_TRUE(VerifyPayload(h, payload.data()));
  payload[4] ^= 0x10;
  EXPECT_FALSE(VerifyPayload(h, payload.data()));
}

// ---------------------------------------------------------------------
// TenantGovernor under FakeClock
// ---------------------------------------------------------------------

TEST(TenantGovernorTest, RefillArithmeticIsExactAtBoundaries) {
  util::FakeClock clock;
  GovernorOptions opts;
  opts.clock = &clock;
  opts.default_tenant = {/*rate=*/10.0, /*burst=*/5.0, Tier::kFree};
  TenantGovernor gov(opts);

  // A cold tenant owns a full burst and not a token more.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kAdmit) << i;
  }
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kShedTenantRate);

  // 100ms at 10/s = exactly one token.
  clock.Advance(100000);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kShedTenantRate);

  // Fractional refills accumulate across shed attempts: 50ms = 0.5
  // tokens (shed), another 50ms completes the token (admit). A refill
  // implementation that drops partial tokens on each probe fails here.
  clock.Advance(50000);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kShedTenantRate);
  clock.Advance(50000);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kAdmit);

  // Idling forever clamps at burst, never beyond.
  clock.Advance(3600ull * 1000000ull);
  std::vector<TenantGovernor::TenantStats> stats = gov.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_DOUBLE_EQ(stats[0].tokens, 5.0);
}

TEST(TenantGovernorTest, PaidShedsLastAtGlobalSaturation) {
  util::FakeClock clock;
  GovernorOptions opts;
  opts.clock = &clock;
  opts.global_rate_per_sec = 10.0;
  opts.global_burst = 10.0;
  opts.paid_reserve_fraction = 0.2;  // 2 of 10 tokens reserved for paid
  opts.default_tenant = {/*rate=*/1e9, /*burst=*/1e9, Tier::kFree};
  TenantGovernor gov(opts);
  gov.SetTenant(7, {/*rate=*/1e9, /*burst=*/1e9, Tier::kPaid});

  // Free admits down to the reserve floor (10 -> 2 = 8 admits)...
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(gov.Admit(3), TenantGovernor::Verdict::kAdmit) << i;
  }
  // ...then free is shed while paid still drains the reserve to zero.
  EXPECT_EQ(gov.Admit(3), TenantGovernor::Verdict::kShedGlobal);
  EXPECT_EQ(gov.Admit(7), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(7), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(7), TenantGovernor::Verdict::kShedGlobal);
  EXPECT_EQ(gov.Admit(3), TenantGovernor::Verdict::kShedGlobal);

  // Refill lifts free above the floor again.
  clock.Advance(300000);  // 3 tokens
  EXPECT_EQ(gov.Admit(3), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(3), TenantGovernor::Verdict::kShedGlobal);
  EXPECT_EQ(gov.Admit(7), TenantGovernor::Verdict::kAdmit);
}

TEST(TenantGovernorTest, CountersAndLatencyStatsAreExact) {
  util::FakeClock clock;
  GovernorOptions opts;
  opts.clock = &clock;
  opts.default_tenant = {/*rate=*/0.0, /*burst=*/3.0, Tier::kFree};
  TenantGovernor gov(opts);

  EXPECT_EQ(gov.Admit(5), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(5), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(5), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(5), TenantGovernor::Verdict::kShedTenantRate);
  EXPECT_EQ(gov.Admit(5), TenantGovernor::Verdict::kShedTenantRate);
  gov.RecordLatency(5, 100.0, true);
  gov.RecordLatency(5, 200.0, true);
  gov.RecordLatency(5, 300.0, false);

  std::vector<TenantGovernor::TenantStats> stats = gov.Stats();
  ASSERT_EQ(stats.size(), 1u);
  const TenantGovernor::TenantStats& s = stats[0];
  EXPECT_EQ(s.tenant_id, 5u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.shed_rate, 2u);
  EXPECT_EQ(s.shed_global, 0u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_GT(s.p99_us, s.p50_us);
  EXPECT_NEAR(s.mean_us, 200.0, 10.0);

  std::string json = gov.MetricsJson();
  EXPECT_NE(json.find("\"admitted\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_rate\":2"), std::string::npos) << json;
}

TEST(TenantGovernorTest, SetTenantClampsExistingBucket) {
  util::FakeClock clock;
  GovernorOptions opts;
  opts.clock = &clock;
  opts.default_tenant = {/*rate=*/0.0, /*burst=*/100.0, Tier::kFree};
  TenantGovernor gov(opts);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kAdmit);  // 99 left
  // Shrinking the burst clamps the stockpile instead of honoring it.
  gov.SetTenant(1, {/*rate=*/0.0, /*burst=*/2.0, Tier::kFree});
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(gov.Admit(1), TenantGovernor::Verdict::kShedTenantRate);
}

TEST(TenantGovernorTest, MultithreadedHammerNeverOveradmits) {
  // Frozen clock + zero refill rate: exactly `burst` admissions exist,
  // no matter how many threads race for them.
  util::FakeClock clock;
  GovernorOptions opts;
  opts.clock = &clock;
  opts.global_rate_per_sec = 0.0;
  opts.default_tenant = {/*rate=*/0.0, /*burst=*/100.0, Tier::kFree};
  TenantGovernor gov(opts);

  constexpr size_t kThreads = 8, kIters = 500;
  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kIters; ++i) {
        if (gov.Admit(9) == TenantGovernor::Verdict::kAdmit) {
          admitted.fetch_add(1);
          gov.RecordLatency(9, 50.0, true);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 100u);
  std::vector<TenantGovernor::TenantStats> stats = gov.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].admitted, 100u);
  EXPECT_EQ(stats[0].shed_rate, kThreads * kIters - 100u);
  EXPECT_EQ(stats[0].completed, 100u);
}

// ---------------------------------------------------------------------
// End-to-end socket serving
// ---------------------------------------------------------------------

class NetE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::OpenBG::Options options;
    options.world.seed = 31;
    options.world.scale = 0.25;
    options.world.num_products = 300;
    kg_ = core::OpenBG::Build(options).release();

    bench_builder::BenchmarkSpec spec;
    spec.name = "net-test";
    spec.num_relations = 12;
    spec.dev_size = 40;
    spec.test_size = 80;
    ds_ = new kge::Dataset(kg_->BuildBenchmark(spec, nullptr));

    util::Rng rng(13);
    model_ = new kge::TransE(ds_->num_entities(), ds_->num_relations(), 16,
                             1.0f, &rng);
    kge::TrainConfig config;
    config.epochs = 2;
    config.batch_size = 256;
    TrainKgeModel(model_, *ds_, config);

    mapper_ = new construction::SchemaMapper(kg_->world().brands);
  }

  static void TearDownTestSuite() {
    delete mapper_;
    delete model_;
    delete ds_;
    delete kg_;
    mapper_ = nullptr;
    model_ = nullptr;
    ds_ = nullptr;
    kg_ = nullptr;
  }

  void TearDown() override { util::failpoints::DisarmAll(); }

  serve::ServeContext::Bindings AllBindings() {
    serve::ServeContext::Bindings b;
    b.graph = &kg_->graph();
    b.ontology = &kg_->ontology();
    b.dataset = ds_;
    b.model = model_;
    b.mapper = mapper_;
    return b;
  }

  /// Server options with effectively-unlimited admission (tests that
  /// exercise the governor configure it explicitly).
  static ServerOptions OpenServerOptions() {
    ServerOptions o;
    o.event_threads = 2;
    o.worker_threads = 2;
    o.governor.default_tenant = {1e12, 1e12, Tier::kPaid};
    return o;
  }

  static Client::Options ClientOptions(uint16_t port, uint32_t tenant) {
    Client::Options o;
    o.port = port;
    o.tenant_id = tenant;
    return o;
  }

  /// Zeroes the from_cache/degraded provenance bytes so wire payloads can
  /// be compared byte-for-byte against a locally encoded answer (cache
  /// provenance legitimately differs between the two computations).
  static std::string MaskProvenance(std::string payload) {
    if (payload.size() >= 3) {
      payload[1] = 0;
      payload[2] = 0;
    }
    return payload;
  }

  static core::OpenBG* kg_;
  static kge::Dataset* ds_;
  static kge::TransE* model_;
  static construction::SchemaMapper* mapper_;
};

core::OpenBG* NetE2ETest::kg_ = nullptr;
kge::Dataset* NetE2ETest::ds_ = nullptr;
kge::TransE* NetE2ETest::model_ = nullptr;
construction::SchemaMapper* NetE2ETest::mapper_ = nullptr;

/// One pre-answered query: what to send and the payload bytes the wire
/// answer must match (modulo cache-provenance bytes).
struct GoldenQuery {
  Tag tag = Tag::kPing;
  uint32_t a = 0, b = 0, k = 0;
  std::string text;
  std::string expected;  // provenance-masked encoded payload
};

TEST_F(NetE2ETest, PipelinedMixedTenantsAreByteIdenticalAtScale) {
  // THE acceptance test: >= 10k pipelined mixed-endpoint requests from 3
  // tenants, every wire answer byte-identical to the in-process engine's
  // encoded answer, out-of-order completions observed, zero errors.
  serve::ServeContext ctx(AllBindings());
  serve::EngineOptions eopts;
  eopts.num_threads = 2;
  serve::QueryEngine engine(&ctx, eopts);
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  // Build the golden set from direct in-process engine calls.
  std::vector<GoldenQuery> golden;
  for (size_t i = 0; i < 24; ++i) {
    const kge::LpTriple& q = ds_->test[i % ds_->test.size()];
    GoldenQuery g;
    g.tag = Tag::kLinkPredict;
    g.a = q.h;
    g.b = q.r;
    g.k = (i % 2 == 0) ? 5 : 10;
    serve::Response resp = engine.LinkPredictTopK(q.h, q.r, g.k);
    ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
    g.expected =
        MaskProvenance(EncodeResponsePayload(Tag::kLinkPredict, resp));
    golden.push_back(std::move(g));
  }
  const auto& product_terms = kg_->assembly().product_terms;
  for (size_t i = 0; i < 16; ++i) {
    GoldenQuery g;
    g.tag = Tag::kNeighbors;
    g.a = product_terms[i % product_terms.size()];
    g.b = 0xFFFFFFFFu;
    serve::Response resp = engine.Neighbors(g.a);
    ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
    g.expected =
        MaskProvenance(EncodeResponsePayload(Tag::kNeighbors, resp));
    golden.push_back(std::move(g));
  }
  for (size_t i = 0; i < 12; ++i) {
    GoldenQuery g;
    g.tag = Tag::kConceptsOf;
    g.a = product_terms[(i * 7) % product_terms.size()];
    serve::Response resp = engine.ConceptsOf(g.a);
    ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
    g.expected =
        MaskProvenance(EncodeResponsePayload(Tag::kConceptsOf, resp));
    golden.push_back(std::move(g));
  }
  for (size_t i = 0; i < 12; ++i) {
    const datagen::Product& p =
        kg_->world().products[(i * 13) % kg_->world().products.size()];
    GoldenQuery g;
    g.tag = Tag::kEntityLink;
    g.text = p.brand_mention.empty() ? "no-such-brand" : p.brand_mention;
    serve::Response resp = engine.EntityLink(g.text);
    ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
    g.expected =
        MaskProvenance(EncodeResponsePayload(Tag::kEntityLink, resp));
    golden.push_back(std::move(g));
  }

  constexpr size_t kTenants = 3;
  constexpr size_t kPerTenant = 3500;  // 10500 total
  constexpr size_t kPipeline = 50;
  std::atomic<uint64_t> mismatches{0}, answered{0}, ooo_events{0};

  std::vector<std::thread> clients;
  for (size_t t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      Client client(ClientOptions(server.port(), 100 + t));
      ASSERT_TRUE(client.Connect().ok());
      size_t sent = 0;
      while (sent < kPerTenant) {
        const size_t batch = std::min(kPipeline, kPerTenant - sent);
        std::map<uint64_t, const GoldenQuery*> inflight;
        std::vector<uint64_t> send_order;
        for (size_t i = 0; i < batch; ++i) {
          const GoldenQuery& g =
              golden[(t * 31 + sent + i) % golden.size()];
          uint64_t id = 0;
          switch (g.tag) {
            case Tag::kLinkPredict:
              id = client.SendLinkPredict(g.a, g.b, g.k);
              break;
            case Tag::kNeighbors:
              id = client.SendNeighbors(g.a, g.b);
              break;
            case Tag::kConceptsOf:
              id = client.SendConceptsOf(g.a);
              break;
            case Tag::kEntityLink:
              id = client.SendEntityLink(g.text);
              break;
            default:
              FAIL() << "unexpected tag";
          }
          inflight.emplace(id, &g);
          send_order.push_back(id);
        }
        ASSERT_TRUE(client.Flush().ok());
        size_t arrival = 0;
        while (!inflight.empty()) {
          WireResponse resp;
          std::string raw;
          util::Status s = client.Recv(&resp, &raw);
          ASSERT_TRUE(s.ok()) << s.message();
          auto it = inflight.find(resp.request_id);
          ASSERT_NE(it, inflight.end()) << "dropped or duplicated id";
          EXPECT_EQ(resp.status, WireStatus::kOk);
          if (MaskProvenance(raw) != it->second->expected) {
            mismatches.fetch_add(1);
          }
          if (send_order[arrival] != resp.request_id) ooo_events.fetch_add(1);
          ++arrival;
          inflight.erase(it);
          answered.fetch_add(1);
        }
        sent += batch;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(answered.load(), kTenants * kPerTenant);
  EXPECT_EQ(mismatches.load(), 0u);
  // Pipelining is real: across 10k+ requests on a 2-worker engine, at
  // least some responses overtook earlier ones.
  EXPECT_GT(ooo_events.load(), 0u);

  Server::NetStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, kTenants * kPerTenant);
  EXPECT_EQ(stats.frames_out, kTenants * kPerTenant);
  EXPECT_EQ(stats.bad_header, 0u);
  EXPECT_EQ(stats.bad_payload, 0u);
  EXPECT_EQ(stats.shed, 0u);
  server.Stop();
}

TEST_F(NetE2ETest, ResponsesCompleteOutOfOrder) {
  // A scoring request rides the worker pool; pings are answered inline on
  // the event thread. Pings sent AFTER the scoring request must be able
  // to overtake it — out-of-order completion is a protocol guarantee.
  serve::ServeContext ctx(AllBindings());
  serve::EngineOptions eopts;
  eopts.cache_enabled = false;  // force real scoring work
  serve::QueryEngine engine(&ctx, eopts);
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());
  std::vector<uint64_t> slow_ids, ping_ids;
  for (int i = 0; i < 5; ++i) {
    const kge::LpTriple& q = ds_->test[i];
    slow_ids.push_back(client.SendLinkPredict(q.h, q.r, 10));
  }
  for (int i = 0; i < 100; ++i) ping_ids.push_back(client.SendPing("p"));
  ASSERT_TRUE(client.Flush().ok());

  size_t pings_before_last_slow = 0, slow_seen = 0, got = 0;
  while (got < slow_ids.size() + ping_ids.size()) {
    WireResponse resp;
    ASSERT_TRUE(client.Recv(&resp).ok());
    EXPECT_EQ(resp.status, WireStatus::kOk);
    const bool is_slow = std::find(slow_ids.begin(), slow_ids.end(),
                                   resp.request_id) != slow_ids.end();
    if (is_slow) {
      ++slow_seen;
    } else if (slow_seen < slow_ids.size()) {
      ++pings_before_last_slow;
    }
    ++got;
  }
  EXPECT_GT(pings_before_last_slow, 0u)
      << "no ping overtook a pipelined scoring request";
  server.Stop();
}

TEST_F(NetE2ETest, PerTenantBucketsShedFreeNeverPaid) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  ServerOptions sopts = OpenServerOptions();
  // Free tenants: 40-request burst, negligible refill. Paid: unlimited.
  sopts.governor.default_tenant = {/*rate=*/0.001, /*burst=*/40.0,
                                   Tier::kFree};
  Server server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  server.governor().SetTenant(7, {/*rate=*/1e12, /*burst=*/1e12,
                                  Tier::kPaid});

  constexpr size_t kLoad = 300;
  auto run_tenant = [&](uint32_t tenant, size_t* ok_count,
                        size_t* shed_count) {
    Client client(ClientOptions(server.port(), tenant));
    ASSERT_TRUE(client.Connect().ok());
    const kge::LpTriple& q = ds_->test[1];
    for (size_t i = 0; i < kLoad; ++i) {
      client.SendLinkPredict(q.h, q.r, 5);
    }
    ASSERT_TRUE(client.Flush().ok());
    for (size_t i = 0; i < kLoad; ++i) {
      WireResponse resp;
      ASSERT_TRUE(client.Recv(&resp).ok());
      if (resp.status == WireStatus::kOk) {
        ++*ok_count;
      } else if (resp.status == WireStatus::kShed) {
        ++*shed_count;
      } else {
        FAIL() << "unexpected status " << WireStatusName(resp.status);
      }
    }
  };

  size_t free_ok = 0, free_shed = 0, paid_ok = 0, paid_shed = 0;
  std::thread free_thread(
      [&] { run_tenant(3, &free_ok, &free_shed); });
  std::thread paid_thread(
      [&] { run_tenant(7, &paid_ok, &paid_shed); });
  free_thread.join();
  paid_thread.join();

  // Same offered load: free bounces off its bucket, paid sheds nothing.
  EXPECT_GT(free_shed, 0u);
  EXPECT_LE(free_ok, 45u);  // burst + a sliver of refill
  EXPECT_EQ(paid_shed, 0u);
  EXPECT_EQ(paid_ok, kLoad);

  bool saw_free = false, saw_paid = false;
  for (const TenantGovernor::TenantStats& s : server.governor().Stats()) {
    if (s.tenant_id == 3) {
      saw_free = true;
      EXPECT_EQ(s.admitted, free_ok);
      EXPECT_EQ(s.shed_rate, free_shed);
      EXPECT_EQ(s.completed, free_ok);  // latency recorded per admit
    }
    if (s.tenant_id == 7) {
      saw_paid = true;
      EXPECT_EQ(s.shed_rate + s.shed_global, 0u);
      EXPECT_EQ(s.admitted, kLoad);
    }
  }
  EXPECT_TRUE(saw_free);
  EXPECT_TRUE(saw_paid);
  server.Stop();
}

TEST_F(NetE2ETest, MidRunCanaryPromotionIsAtomicWithNoDropsOrDups) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  serve::CanaryOptions copts;
  copts.mirror_fraction = 0.25;
  serve::CanaryController canary(&ctx, copts);
  ServerOptions sopts = OpenServerOptions();
  sopts.canary = &canary;
  Server server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());

  // A shape-compatible candidate with different (untrained) parameters,
  // so generation-N and generation-N+1 answers are distinguishable.
  util::Rng rng(913);
  auto candidate = std::make_shared<kge::TransE>(
      ds_->num_entities(), ds_->num_relations(), 16, 1.0f, &rng);
  candidate->PrepareEval();

  constexpr size_t kQueries = 8;
  std::vector<std::vector<serve::ScoredEntity>> old_answers(kQueries),
      new_answers(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    const kge::LpTriple& q = ds_->test[i];
    std::vector<float> scores;
    model_->ScoreTails(q.h, q.r, &scores);
    old_answers[i] = serve::SelectTopK(scores, 10);
    candidate->ScoreTails(q.h, q.r, &scores);
    new_answers[i] = serve::SelectTopK(scores, 10);
    ASSERT_NE(old_answers[i], new_answers[i]) << "models indistinguishable";
  }

  constexpr size_t kTotal = 2000;
  const uint64_t gen_before = ctx.generation();
  std::atomic<size_t> received{0};
  std::atomic<size_t> old_seen{0}, new_seen{0}, other_seen{0};
  std::atomic<size_t> promote_floor{0};  // received() before Promote ran
  std::atomic<bool> promoted{false};

  std::thread client_thread([&] {
    Client client(ClientOptions(server.port(), 1));
    ASSERT_TRUE(client.Connect().ok());
    std::map<uint64_t, size_t> inflight;  // id -> query index
    size_t sent = 0;
    while (received.load() < kTotal) {
      const size_t batch = std::min<size_t>(40, kTotal - sent);
      for (size_t i = 0; i < batch; ++i) {
        const size_t qi = (sent + i) % kQueries;
        const kge::LpTriple& q = ds_->test[qi];
        uint64_t id = client.SendLinkPredict(q.h, q.r, 10);
        ASSERT_TRUE(inflight.emplace(id, qi).second) << "duplicate id";
      }
      sent += batch;
      ASSERT_TRUE(client.Flush().ok());
      while (!inflight.empty()) {
        WireResponse resp;
        ASSERT_TRUE(client.Recv(&resp).ok());
        auto it = inflight.find(resp.request_id);
        ASSERT_NE(it, inflight.end()) << "dropped or duplicated response";
        ASSERT_EQ(resp.status, WireStatus::kOk);
        const size_t qi = it->second;
        if (resp.payload.topk == old_answers[qi]) {
          old_seen.fetch_add(1);
        } else if (resp.payload.topk == new_answers[qi]) {
          new_seen.fetch_add(1);
        } else {
          other_seen.fetch_add(1);
        }
        inflight.erase(it);
        received.fetch_add(1);
      }
    }
  });

  // Mid-run: stage the canary at ~25% completion, promote at ~50%.
  while (received.load() < kTotal / 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(canary.Begin(candidate).ok());
  while (received.load() < kTotal / 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  promote_floor.store(received.load());
  ASSERT_TRUE(canary.Promote().ok());
  promoted.store(true);
  client_thread.join();

  // Every answer is EXACTLY generation N or generation N+1 — never a
  // blend — and the flip happened around the promotion point.
  EXPECT_EQ(other_seen.load(), 0u);
  EXPECT_EQ(old_seen.load() + new_seen.load(), kTotal);
  EXPECT_GE(old_seen.load(), promote_floor.load() / 2);
  EXPECT_GT(new_seen.load(), 0u);
  EXPECT_EQ(ctx.generation(), gen_before + 1);
  EXPECT_EQ(canary.state(), serve::CanaryController::State::kPromoted);
  EXPECT_GT(canary.stats().mirrored, 0u);

  ctx.ReloadModel(model_);  // restore the suite-shared model
  server.Stop();
}

TEST_F(NetE2ETest, VersionNegotiationAnswersAndKeepsConnection) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());

  // Hand-roll a ping frame claiming a future protocol version.
  FrameHeader h;
  h.version = kWireVersion + 3;
  h.tag = static_cast<uint16_t>(Tag::kPing);
  h.request_id = 424242;
  std::string frame;
  AppendFrame(&frame, h, "");
  client.SendRawFrame(frame);
  uint64_t pong_id = client.SendPing("still-alive");
  ASSERT_TRUE(client.Flush().ok());

  WireResponse resp;
  ASSERT_TRUE(client.Recv(&resp).ok());
  EXPECT_EQ(resp.request_id, 424242u);
  EXPECT_TRUE(resp.is_error_frame);
  EXPECT_EQ(resp.status, WireStatus::kBadVersion);
  EXPECT_EQ(resp.server_version, kWireVersion);

  // The connection survived: the follow-up current-version ping answers.
  ASSERT_TRUE(client.Recv(&resp).ok());
  EXPECT_EQ(resp.request_id, pong_id);
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.text, "still-alive");
  EXPECT_EQ(server.stats().bad_version, 1u);
  server.Stop();
}

TEST_F(NetE2ETest, BadPayloadCrcIsConfinedToOneRequest) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());

  WireRequest req;
  req.tag = Tag::kEntityLink;
  req.request_id = 1001;
  req.tenant_id = 1;
  req.text = "mention under corruption";
  std::string frame;
  AppendRequestFrame(&frame, req);
  frame[kHeaderSize + 2] ^= 0x40;  // flip a payload bit, header stays valid
  client.SendRawFrame(frame);
  uint64_t ok_id = client.SendPing("after-corruption");
  ASSERT_TRUE(client.Flush().ok());

  WireResponse resp;
  ASSERT_TRUE(client.Recv(&resp).ok());
  EXPECT_EQ(resp.request_id, 1001u);
  EXPECT_TRUE(resp.is_error_frame);
  EXPECT_EQ(resp.status, WireStatus::kBadPayload);

  ASSERT_TRUE(client.Recv(&resp).ok());
  EXPECT_EQ(resp.request_id, ok_id);
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(server.stats().bad_payload, 1u);
  EXPECT_EQ(server.stats().bad_header, 0u);
  server.Stop();
}

TEST_F(NetE2ETest, BadHeaderDrawsGoAwayThenCleanClose) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());
  client.SendRawFrame("this is definitely not an OBGWIRE1 frame........");
  ASSERT_TRUE(client.Flush().ok());

  WireResponse resp;
  util::Status s = client.Recv(&resp);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(resp.tag, Tag::kGoAway);
  EXPECT_TRUE(resp.is_error_frame);
  // After the GoAway the server closes; the client sees EOF, not a torn
  // frame or reset.
  s = client.Recv(&resp);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("eof"), std::string::npos) << s.message();
  EXPECT_EQ(server.stats().bad_header, 1u);
  server.Stop();
}

TEST_F(NetE2ETest, ShortReadsAndWritesReassembleEveryFrame) {
  // net::read and net::write clamp every syscall to one byte: frames
  // fragment maximally in both directions and must still reassemble.
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());
  util::failpoints::Arm(kFpRead, 0);
  util::failpoints::Arm(kFpWrite, 0);

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());
  std::map<uint64_t, std::string> want;
  const kge::LpTriple& q = ds_->test[2];
  want.emplace(client.SendLinkPredict(q.h, q.r, 5), "topk");
  want.emplace(client.SendPing("fragmented"), "ping");
  want.emplace(client.SendConceptsOf(kg_->assembly().product_terms[0]),
               "concepts");
  ASSERT_TRUE(client.Flush().ok());
  for (size_t i = 0; i < 3; ++i) {
    WireResponse resp;
    util::Status s = client.Recv(&resp);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(resp.status, WireStatus::kOk);
    EXPECT_EQ(want.erase(resp.request_id), 1u);
  }
  EXPECT_TRUE(want.empty());
  EXPECT_GT(util::failpoints::FireCount(kFpRead), 0u);
  EXPECT_GT(util::failpoints::FireCount(kFpWrite), 0u);
  util::failpoints::DisarmAll();
  server.Stop();
}

TEST_F(NetE2ETest, AcceptFailpointDropsConnectionThenHeals) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  util::failpoints::Arm(kFpAccept, 0);
  {
    Client doomed(ClientOptions(server.port(), 1));
    // connect() itself succeeds (the kernel completed the handshake); the
    // server closes the accepted fd, so the first read reports EOF/reset.
    ASSERT_TRUE(doomed.Connect().ok());
    doomed.SendPing("into the void");
    (void)doomed.Flush();  // may or may not error depending on timing
    WireResponse resp;
    EXPECT_FALSE(doomed.Recv(&resp).ok());
  }
  util::failpoints::Disarm(kFpAccept);

  Client healed(ClientOptions(server.port(), 1));
  ASSERT_TRUE(healed.Connect().ok());
  uint64_t id = healed.SendPing("recovered");
  ASSERT_TRUE(healed.Flush().ok());
  WireResponse resp;
  ASSERT_TRUE(healed.Recv(&resp).ok());
  EXPECT_EQ(resp.request_id, id);
  EXPECT_EQ(resp.text, "recovered");
  EXPECT_GE(server.stats().accept_faults, 1u);
  server.Stop();
}

TEST_F(NetE2ETest, GracefulShutdownDrainsInFlightToCleanEOF) {
  serve::ServeContext ctx(AllBindings());
  serve::EngineOptions eopts;
  eopts.cache_enabled = false;  // keep requests genuinely in flight
  serve::QueryEngine engine(&ctx, eopts);
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());
  constexpr size_t kBurst = 120;
  for (size_t i = 0; i < kBurst; ++i) {
    const kge::LpTriple& q = ds_->test[i % ds_->test.size()];
    client.SendLinkPredict(q.h, q.r, 10);
  }
  ASSERT_TRUE(client.Flush().ok());

  // Stop the server while that pipeline is mid-flight.
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.RequestStop();
  });

  size_t ok = 0, refused = 0;
  for (;;) {
    WireResponse resp;
    util::Status s = client.Recv(&resp);
    if (!s.ok()) {
      // The drain contract: the stream ends with a clean EOF after a
      // whole frame — never a CRC error, torn frame, or reset.
      EXPECT_NE(s.message().find("eof"), std::string::npos) << s.message();
      break;
    }
    if (resp.status == WireStatus::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(resp.status, WireStatus::kShuttingDown);
      ++refused;
    }
  }
  stopper.join();
  server.Wait();
  // Everything admitted before the stop was answered; whatever raced the
  // stop got an explicit kShuttingDown, not silence.
  EXPECT_GT(ok, 0u);
  EXPECT_LE(ok + refused, kBurst);
  server.Stop();
}

TEST_F(NetE2ETest, ShutdownUnderTornWritesStillEndsInWholeFrames) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  ServerOptions sopts = OpenServerOptions();
  sopts.drain_deadline_ms = 500;
  Server server(&engine, sopts);
  ASSERT_TRUE(server.Start().ok());
  util::failpoints::Arm(kFpWrite, 0);  // every response leaves 1 byte/syscall

  Client client(ClientOptions(server.port(), 1));
  ASSERT_TRUE(client.Connect().ok());
  for (size_t i = 0; i < 60; ++i) {
    const kge::LpTriple& q = ds_->test[i % ds_->test.size()];
    client.SendLinkPredict(q.h, q.r, 10);
  }
  ASSERT_TRUE(client.Flush().ok());
  std::thread stopper([&] { server.RequestStop(); });

  for (;;) {
    WireResponse resp;
    util::Status s = client.Recv(&resp);
    if (!s.ok()) {
      EXPECT_NE(s.message().find("eof"), std::string::npos) << s.message();
      break;
    }
    EXPECT_TRUE(resp.status == WireStatus::kOk ||
                resp.status == WireStatus::kShuttingDown);
  }
  stopper.join();
  server.Wait();
  util::failpoints::DisarmAll();
  server.Stop();
}

TEST_F(NetE2ETest, MetricsEndpointFoldsGovernorAndServerCounters) {
  serve::ServeContext ctx(AllBindings());
  serve::QueryEngine engine(&ctx, serve::EngineOptions{});
  Server server(&engine, OpenServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Client client(ClientOptions(server.port(), 11));
  ASSERT_TRUE(client.Connect().ok());
  const kge::LpTriple& q = ds_->test[0];
  client.SendLinkPredict(q.h, q.r, 5);
  uint64_t metrics_id = client.SendMetrics();
  uint64_t health_id = client.SendHealth();
  ASSERT_TRUE(client.Flush().ok());

  bool saw_metrics = false, saw_health = false;
  for (int i = 0; i < 3; ++i) {
    WireResponse resp;
    ASSERT_TRUE(client.Recv(&resp).ok());
    if (resp.request_id == metrics_id) {
      saw_metrics = true;
      EXPECT_NE(resp.text.find("\"governor\""), std::string::npos);
      EXPECT_NE(resp.text.find("\"tenants\""), std::string::npos);
      EXPECT_NE(resp.text.find("\"server\""), std::string::npos);
    }
    if (resp.request_id == health_id) {
      saw_health = true;
      EXPECT_FALSE(resp.text.empty());
    }
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_health);
  server.Stop();
}

}  // namespace
}  // namespace openbg::net
