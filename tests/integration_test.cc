// Cross-module integration tests: the full paper pipeline end to end, the
// dual-channel encoder's exact backward, and the text featurizer the
// LM-style baselines share.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/openbg.h"
#include "kge/evaluator.h"
#include "kge/text_features.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "pretrain/encoder.h"
#include "pretrain/tasks.h"
#include "rdf/ntriples.h"

namespace openbg {
namespace {

TEST(IntegrationTest, WorldToKgToBenchmarkToTransE) {
  // The whole Sec. II + III pipeline: generate, construct, sample, train,
  // evaluate — asserting each stage hands the next something learnable.
  core::OpenBG::Options opts;
  opts.world.seed = 99;
  opts.world.scale = 0.12;
  opts.world.num_products = 500;
  auto kg = core::OpenBG::Build(opts);

  bench_builder::BenchmarkSpec spec;
  spec.num_relations = 20;
  spec.dev_size = 100;
  spec.test_size = 150;
  kge::Dataset ds = kg->BuildBenchmark(spec, nullptr);
  ASSERT_GT(ds.train.size(), 500u);

  util::Rng rng(1);
  kge::TransE model(ds.num_entities(), ds.num_relations(), 24, 1.0f, &rng);
  kge::RankingEvaluator::Options eo;
  eo.max_triples = 100;
  kge::RankingEvaluator evaluator(ds, eo);
  kge::RankingMetrics before = evaluator.Evaluate(&model);

  kge::TrainConfig config;
  config.epochs = 20;
  config.lr = 0.05f;
  TrainKgeModel(&model, ds, config);
  kge::RankingMetrics after = evaluator.Evaluate(&model);
  EXPECT_GT(after.mrr, before.mrr);
  EXPECT_GT(after.hits10, 0.15) << "the sampled benchmark must be learnable";
}

TEST(IntegrationTest, ExportedKgYieldsSameBenchmark) {
  core::OpenBG::Options opts;
  opts.world.seed = 7;
  opts.world.scale = 0.1;
  opts.world.num_products = 200;
  auto kg = core::OpenBG::Build(opts);
  std::string path = ::testing::TempDir() + "/openbg_integration.nt";
  ASSERT_TRUE(kg->ExportNTriples(path).ok());
  rdf::Graph reloaded;
  ASSERT_TRUE(rdf::ReadNTriples(path, &reloaded.dict, &reloaded.store).ok());
  // Spot checks: every product triple survives the round trip.
  const auto& dict = kg->graph().dict;
  size_t checked = 0;
  for (const rdf::Triple& t : kg->graph().store.triples()) {
    if (++checked > 500) break;
    rdf::TermId s = reloaded.dict.FindIri(dict.Text(t.s));
    rdf::TermId p = reloaded.dict.FindIri(dict.Text(t.p));
    rdf::TermId o = dict.IsLiteral(t.o)
                        ? reloaded.dict.FindLiteral(dict.Text(t.o))
                        : reloaded.dict.FindIri(dict.Text(t.o));
    ASSERT_NE(s, rdf::kInvalidTerm);
    ASSERT_TRUE(reloaded.store.Contains(s, p, o));
  }
  std::remove(path.c_str());
}

TEST(TextFeaturizerTest, FeaturesAndTokens) {
  kge::Dataset ds;
  ds.entity_names = {"a", "b", "c"};
  ds.entity_text = {"red dress", "red shoe", ""};
  ds.entity_images = {{}, {}, {}};
  ds.relation_names = {"r"};
  kge::TextFeaturizer feats(ds, 1 << 10);
  // Shared tokens share hashed features.
  const auto& fa = feats.EntityFeatures(0);
  const auto& fb = feats.EntityFeatures(1);
  size_t shared = 0;
  for (uint32_t f : fa) {
    shared += std::count(fb.begin(), fb.end(), f);
  }
  EXPECT_GT(shared, 0u) << "'red' must hash identically for both entities";
  // Empty text still yields a sentinel feature and no tokens.
  EXPECT_EQ(feats.EntityFeatures(2).size(), 1u);
  EXPECT_TRUE(feats.EntityTokens(2).empty());
  // Token ids come from a shared vocabulary.
  EXPECT_EQ(feats.EntityTokens(0)[0], feats.EntityTokens(1)[0]);
}

TEST(EncoderBackwardTest, MatchesNumericalGradient) {
  datagen::WorldSpec spec;
  spec.seed = 5;
  spec.scale = 0.05;
  spec.num_products = 40;
  datagen::World world = datagen::GenerateWorld(spec);

  pretrain::EncoderConfig cfg = pretrain::MplugBaseKgConfig();
  cfg.pretrained = false;
  cfg.dim = 8;
  cfg.hash_space = 1 << 10;
  pretrain::PretrainedEncoder enc(cfg, world);

  std::vector<pretrain::EncoderFeatures> feats = {
      enc.MakeFeatures(world.products[0].title_tokens, 0),
      enc.MakeFeatures(world.products[1].title_tokens, 1)};
  std::vector<uint32_t> labels = {0, 1};
  util::Rng rng(3);
  nn::Linear head("h", enc.rep_dim(), 2, &rng);

  auto loss_fn = [&]() {
    nn::Matrix x, y, d;
    enc.Embed(feats, &x);
    head.Forward(x, &y);
    return nn::SoftmaxCrossEntropy(y, labels, &d);
  };
  // Analytic gradient through head + the normalized dual-channel pooling.
  nn::Matrix x, y, dy, dx;
  enc.Embed(feats, &x);
  head.Forward(x, &y);
  nn::SoftmaxCrossEntropy(y, labels, &dy);
  head.Backward(x, dy, &dx);
  enc.EmbedBackward(feats, dx);
  EXPECT_LT(nn::MaxGradDiscrepancy(enc.table(), loss_fn, 1e-2, 256), 5e-3)
      << "EmbedBackward must match the numeric gradient through the "
         "L2 normalization";
}

TEST(IntegrationTest, ConceptPipelineFeedsSalienceLabels) {
  // Sec. II-C facets -> Sec. IV-F task labels: every statement the facet
  // scorer calls salient must exceed its own thresholds, and the derived
  // task must have both classes.
  datagen::WorldSpec spec;
  spec.seed = 11;
  spec.scale = 0.08;
  spec.num_products = 300;
  datagen::World world = datagen::GenerateWorld(spec);
  pretrain::SalienceEvaluationTask task(world, 300, 17);
  EXPECT_GT(task.num_examples(), 40u);
}

}  // namespace
}  // namespace openbg
