#include <gtest/gtest.h>

#include "construction/concept_extractor.h"
#include "construction/concept_quality.h"
#include "construction/kg_assembler.h"
#include "construction/schema_mapper.h"
#include "core/openbg.h"
#include "ontology/reasoner.h"

namespace openbg::construction {
namespace {

using ontology::CoreKind;

datagen::World SmallWorld(uint64_t seed = 7) {
  datagen::WorldSpec spec;
  spec.seed = seed;
  spec.scale = 0.1;
  spec.num_products = 300;
  return datagen::GenerateWorld(spec);
}

TEST(SchemaMapperTest, ExactSynonymFuzzyStages) {
  datagen::TaxonomyData tax;
  datagen::TaxonomyNode a;
  a.name = "Hangzhou";
  a.aliases = {"hz"};
  tax.nodes.push_back(a);
  datagen::TaxonomyNode b;
  b.name = "Shanghai";
  tax.nodes.push_back(b);
  tax.leaves = {0, 1};

  SchemaMapper mapper(tax, 0.75);
  auto r = mapper.Link("hangzhou");
  EXPECT_EQ(r.node, 0);
  EXPECT_EQ(r.kind, SchemaMapper::MatchKind::kExact);
  r = mapper.Link("HZ");
  EXPECT_EQ(r.node, 0);
  EXPECT_EQ(r.kind, SchemaMapper::MatchKind::kSynonym);
  r = mapper.Link("shangahi");  // transposed
  EXPECT_EQ(r.node, 1);
  EXPECT_EQ(r.kind, SchemaMapper::MatchKind::kFuzzy);
  r = mapper.Link("beijing");
  EXPECT_EQ(r.node, -1);
  EXPECT_EQ(r.kind, SchemaMapper::MatchKind::kMiss);
  EXPECT_EQ(mapper.stats().total, 4u);
  EXPECT_EQ(mapper.stats().exact, 1u);
  EXPECT_EQ(mapper.stats().miss, 1u);
}

TEST(SchemaMapperTest, FuzzyBeatsTrieOnlyOnNoisyMentions) {
  datagen::World w = SmallWorld();
  std::vector<std::string> mentions;
  std::vector<int> gold;
  for (const datagen::Product& p : w.products) {
    if (p.brand >= 0) {
      mentions.push_back(p.brand_mention);
      gold.push_back(p.brand);
    }
  }
  ASSERT_GT(mentions.size(), 50u);
  auto with_fuzzy = SchemaMapper::Evaluate(w.brands, mentions, gold, true);
  auto trie_only = SchemaMapper::Evaluate(w.brands, mentions, gold, false);
  EXPECT_GT(with_fuzzy.accuracy, trie_only.accuracy)
      << "fuzzy stage must recover typo'd mentions";
  EXPECT_GT(with_fuzzy.accuracy, 0.85);
  EXPECT_GE(with_fuzzy.coverage, with_fuzzy.accuracy);
}

TEST(ConceptExtractorTest, LearnsTitleSpans) {
  datagen::World w = SmallWorld();
  std::vector<crf::Sequence> train, test;
  for (size_t i = 0; i < w.products.size(); ++i) {
    const datagen::Product& p = w.products[i];
    crf::Sequence seq =
        ConceptExtractor::MakeSequence(p.title_tokens, p.title_spans);
    (i % 5 == 0 ? test : train).push_back(seq);
  }
  ConceptExtractor extractor(w.attribute_types.size(), 1 << 15);
  util::Rng rng(3);
  extractor.Train(train, /*epochs=*/4, /*lr=*/0.3, &rng);
  crf::SpanPrf prf = extractor.Evaluate(test);
  EXPECT_GT(prf.f1, 0.8) << "P=" << prf.precision << " R=" << prf.recall;
}

TEST(ConceptExtractorTest, ExtractReturnsTypedSpans) {
  datagen::World w = SmallWorld();
  std::vector<crf::Sequence> train;
  for (const datagen::Product& p : w.products) {
    train.push_back(
        ConceptExtractor::MakeSequence(p.title_tokens, p.title_spans));
  }
  ConceptExtractor extractor(w.attribute_types.size(), 1 << 15);
  util::Rng rng(5);
  extractor.Train(train, 4, 0.3, &rng);
  const datagen::Product& p = w.products[0];
  std::vector<ExtractedSpan> spans = extractor.Extract(p.title_tokens);
  for (const ExtractedSpan& sp : spans) {
    EXPECT_LT(sp.begin, sp.end);
    EXPECT_LE(sp.end, p.title_tokens.size());
    EXPECT_LT(sp.type, w.attribute_types.size());
    EXPECT_FALSE(sp.text.empty());
  }
}

TEST(ConceptQualityTest, FacetsInRangeAndConsistent) {
  datagen::World w = SmallWorld();
  ConceptQualityScorer scorer(w, CoreKind::kScene);
  ASSERT_GT(scorer.TotalPairs(), 0u);
  const datagen::Product& p = w.products[0];
  ASSERT_FALSE(p.scenes.empty());
  FacetScores f = scorer.Score(p.category, p.scenes[0]);
  EXPECT_GT(f.plausibility, 0.0);
  EXPECT_LE(f.plausibility, 1.0);
  EXPECT_GT(f.typicality, 0.0);
  EXPECT_LE(f.typicality, 1.0);
  EXPECT_GE(f.remarkability, 0.0);
  EXPECT_LE(f.remarkability, 1.0);
  EXPECT_NEAR(f.salience, std::sqrt(f.typicality * f.remarkability), 1e-9);
}

TEST(ConceptQualityTest, UnseenPairScoresZero) {
  datagen::World w = SmallWorld();
  ConceptQualityScorer scorer(w, CoreKind::kCrowd);
  // A pair that never co-occurs: use an out-of-band category id.
  FacetScores f = scorer.Score(/*category_leaf=*/-1, /*concept_leaf=*/0);
  EXPECT_EQ(f.plausibility, 0.0);
  EXPECT_EQ(f.typicality, 0.0);
  EXPECT_EQ(f.salience, 0.0);
}

TEST(ConceptQualityTest, SalientStatementsPassThresholds) {
  datagen::World w = SmallWorld();
  ConceptQualityScorer scorer(w, CoreKind::kScene);
  auto salient = scorer.SalientStatements(0.3, 0.6);
  for (const auto& s : salient) {
    EXPECT_GE(s.scores.typicality, 0.3);
    EXPECT_GE(s.scores.remarkability, 0.6);
  }
}

class AssemblerTest : public ::testing::Test {
 protected:
  AssemblerTest() {
    core::OpenBG::Options opts;
    opts.world.seed = 11;
    opts.world.scale = 0.1;
    opts.world.num_products = 200;
    kg = core::OpenBG::Build(opts);
  }
  std::unique_ptr<core::OpenBG> kg;
};

TEST_F(AssemblerTest, ProductTriplesPresent) {
  const auto& world = kg->world();
  const auto& graph = kg->graph();
  const auto& onto = kg->ontology();
  const auto& asmr = kg->assembly();
  ASSERT_EQ(asmr.product_terms.size(), world.products.size());

  const auto& cat_terms =
      asmr.node_terms[static_cast<size_t>(CoreKind::kCategory)];
  for (size_t i = 0; i < world.products.size(); ++i) {
    const datagen::Product& p = world.products[i];
    rdf::TermId prod = asmr.product_terms[i];
    ASSERT_NE(prod, rdf::kInvalidTerm);
    EXPECT_TRUE(graph.store.Contains(prod, graph.vocab.rdf_type,
                                     cat_terms[p.category]));
    // Every attribute became a data-property triple.
    size_t attr_triples = 0;
    for (rdf::TermId ap : onto.attribute_properties()) {
      attr_triples += graph.store.CountMatches(
          {prod, ap, rdf::TriplePattern::kAny});
    }
    EXPECT_EQ(attr_triples, p.attributes.size());
  }
}

TEST_F(AssemblerTest, LinkStatsAccount) {
  const auto& asmr = kg->assembly();
  size_t brand_mentions = 0;
  for (const datagen::Product& p : kg->world().products) {
    if (p.brand >= 0) ++brand_mentions;
  }
  EXPECT_EQ(asmr.brand_link_stats.total, brand_mentions);
  EXPECT_EQ(asmr.brand_link_stats.exact + asmr.brand_link_stats.synonym +
                asmr.brand_link_stats.fuzzy + asmr.brand_link_stats.miss,
            brand_mentions);
  EXPECT_GT(asmr.products_with_brand, brand_mentions / 2);
  EXPECT_LE(asmr.products_with_brand, brand_mentions);
}

TEST_F(AssemblerTest, NoDomainRangeViolations) {
  ontology::Reasoner reasoner = kg->MakeReasoner();
  std::vector<ontology::Violation> v = reasoner.ValidateObjectProperties();
  EXPECT_TRUE(v.empty()) << v.size() << " violations, first: "
                         << (v.empty() ? "" : v[0].reason);
}

TEST_F(AssemblerTest, StatsMatchWorldCounts) {
  ontology::KgStats stats = kg->Stats();
  EXPECT_EQ(stats.num_products, kg->world().products.size());
  EXPECT_GT(stats.num_triples, kg->world().products.size() * 5);
  EXPECT_GT(stats.num_relation_types, 20u);
  // Taxonomy totals match generated node counts.
  for (const ontology::TaxonomyStats& ts : stats.taxonomies) {
    EXPECT_EQ(ts.total, kg->world().TaxonomyFor(ts.kind).nodes.size())
        << CoreKindName(ts.kind);
  }
}

TEST_F(AssemblerTest, SchemaAxiomsEmitted) {
  ontology::KgStats stats = kg->Stats();
  EXPECT_GT(stats.meta_property_counts.at("owl:equivalentClass"), 0u);
  EXPECT_GT(stats.meta_property_counts.at("rdfs:subPropertyOf"), 0u);
}

TEST_F(AssemblerTest, ConceptLabelsUseSkos) {
  ontology::KgStats stats = kg->Stats();
  size_t scenes = kg->world().scenes.nodes.size();
  EXPECT_GE(stats.data_property_counts.at("skos:prefLabel"), scenes);
}

}  // namespace
}  // namespace openbg::construction
