#include "ann/ivf_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "ann/quantizer.h"
#include "kge/bilinear_models.h"
#include "kge/evaluator.h"
#include "kge/trans_models.h"
#include "serve/engine.h"
#include "util/rng.h"

namespace openbg::ann {
namespace {

std::vector<float> RandomRow(util::Rng* rng, size_t dim, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (float& x : v) {
    x = static_cast<float>(rng->UniformDouble() * 2.0 - 1.0) * scale;
  }
  return v;
}

// A TransE whose entity table is a Gaussian mixture — the clustered
// structure trained product embeddings exhibit, and the regime the IVF
// index is designed for (the recall gate below runs on this).
std::unique_ptr<kge::TransE> MixtureTransE(size_t entities, size_t relations,
                                           size_t dim, uint64_t seed,
                                           size_t centers = 48,
                                           double sigma = 0.1) {
  util::Rng rng(seed);
  auto model = std::make_unique<kge::TransE>(entities, relations, dim, 1.0f,
                                             &rng);
  std::vector<float> c(centers * dim);
  for (float& x : c) x = static_cast<float>(rng.Normal());
  for (uint32_t e = 0; e < entities; ++e) {
    float* row = model->entities().Row(e);
    const float* center = &c[(e % centers) * dim];
    for (size_t d = 0; d < dim; ++d) {
      row[d] = center[d] + static_cast<float>(rng.Normal(0.0, sigma));
    }
  }
  for (uint32_t r = 0; r < relations; ++r) {
    float* row = model->relations().Row(r);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.Normal(0.0, 0.05));
    }
  }
  return model;
}

// Reference top-k in the serving order: score desc, id asc, NaN as -inf —
// must match serve/engine.cc's SelectTopK and TailIndex::SearchTopK.
std::vector<Candidate> ReferenceTopK(kge::KgeModel* model, uint32_t h,
                                     uint32_t r, size_t k) {
  std::vector<float> scores;
  model->ScoreTails(h, r, &scores);
  auto norm = [](float s) {
    return std::isnan(s) ? -std::numeric_limits<float>::infinity() : s;
  };
  std::vector<uint32_t> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    const float sa = norm(scores[a]), sb = norm(scores[b]);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  k = std::min(k, ids.size());
  std::vector<Candidate> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = {ids[i], scores[ids[i]]};
  return out;
}

TEST(QuantizerTest, RoundTripErrorWithinHalfScale) {
  util::Rng rng(7);
  for (size_t dim : {size_t{1}, size_t{7}, size_t{32}, size_t{129}}) {
    for (float mag : {1e-3f, 1.0f, 250.0f}) {
      std::vector<float> row = RandomRow(&rng, dim, mag);
      std::vector<int8_t> q(dim);
      const float scale = QuantizeRowInt8(row.data(), dim, q.data());
      float maxabs = 0.0f;
      for (float x : row) maxabs = std::max(maxabs, std::fabs(x));
      EXPECT_FLOAT_EQ(scale, maxabs / 127.0f);
      for (size_t i = 0; i < dim; ++i) {
        EXPECT_GE(q[i], -127);
        EXPECT_LE(q[i], 127);
        // The symmetric-quantizer contract: round-to-nearest means each
        // element reconstructs within half a quantization step.
        EXPECT_LE(std::fabs(row[i] - scale * static_cast<float>(q[i])),
                  scale * 0.5f + 1e-7f)
            << "dim=" << dim << " mag=" << mag << " i=" << i;
      }
    }
  }
}

TEST(QuantizerTest, ZeroRowGetsZeroScaleAndCodes) {
  std::vector<float> row(16, 0.0f);
  std::vector<int8_t> q(16, 42);
  EXPECT_EQ(QuantizeRowInt8(row.data(), 16, q.data()), 0.0f);
  for (int8_t c : q) EXPECT_EQ(c, 0);
}

TEST(QuantizerTest, PermutedPackingMatchesPerRowQuantization) {
  util::Rng rng(8);
  const size_t rows = 9, dim = 20;
  nn::Matrix m(rows, dim);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.UniformDouble() * 4.0 - 2.0);
  }
  std::vector<uint32_t> order = {3, 0, 8, 1, 7, 2, 6, 4, 5};
  QuantizedMatrix qm;
  qm.BuildPermuted(m, order);
  ASSERT_EQ(qm.rows(), rows);
  ASSERT_EQ(qm.dim(), dim);
  for (size_t p = 0; p < rows; ++p) {
    std::vector<int8_t> expect(dim);
    const float scale = QuantizeRowInt8(m.Row(order[p]), dim, expect.data());
    EXPECT_FLOAT_EQ(qm.scale(p), scale);
    EXPECT_EQ(std::memcmp(qm.Row(p), expect.data(), dim), 0) << "p=" << p;
  }
}

TEST(TailIndexTest, UnsupportedModelsBuildNull) {
  util::Rng rng(9);
  kge::TransH transh(200, 4, 16, 1.0f, &rng);
  EXPECT_EQ(TailIndex::Build(&transh, IvfOptions()), nullptr);
  kge::TransD transd(200, 4, 16, 1.0f, &rng);
  EXPECT_EQ(TailIndex::Build(&transd, IvfOptions()), nullptr);
}

TEST(TailIndexTest, BuildCoversEveryEntityExactlyOnce) {
  auto model = MixtureTransE(1000, 4, 16, 11);
  IvfOptions opts;
  opts.num_clusters = 13;
  auto index = TailIndex::Build(model.get(), opts, /*model_generation=*/5);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->built_for(), model.get());
  EXPECT_EQ(index->model_generation(), 5u);
  EXPECT_EQ(index->num_entities(), 1000u);
  EXPECT_EQ(index->num_clusters(), 13u);
  size_t total = 0;
  for (size_t c = 0; c < index->num_clusters(); ++c) {
    total += index->cluster_size(c);
  }
  EXPECT_EQ(total, 1000u);
}

TEST(TailIndexTest, BuildIsDeterministic) {
  auto model = MixtureTransE(800, 4, 16, 12);
  IvfOptions opts;
  opts.num_clusters = 16;
  opts.nprobe = 4;
  auto a = TailIndex::Build(model.get(), opts);
  auto b = TailIndex::Build(model.get(), opts);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (uint32_t h = 0; h < 20; ++h) {
    std::vector<Candidate> ca, cb;
    SearchStats sa, sb;
    a->SearchTopK(h, h % 4, 10, 0, &ca, &sa);
    b->SearchTopK(h, h % 4, 10, 0, &cb, &sb);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].id, cb[i].id);
      EXPECT_EQ(ca[i].score, cb[i].score);
    }
    EXPECT_EQ(sa.probed_clusters, sb.probed_clusters);
    EXPECT_EQ(sa.scanned_rows, sb.scanned_rows);
  }
}

TEST(TailIndexTest, SearchStatsReflectProbeBudget) {
  auto model = MixtureTransE(1000, 4, 16, 13);
  IvfOptions opts;
  opts.num_clusters = 20;
  auto index = TailIndex::Build(model.get(), opts);
  ASSERT_NE(index, nullptr);
  std::vector<Candidate> out;
  SearchStats st;
  index->SearchTopK(3, 1, 10, /*nprobe=*/6, &out, &st);
  EXPECT_EQ(st.probed_clusters, 6u);
  EXPECT_GE(st.scanned_rows, st.rescored);
  EXPECT_GE(st.rescored, out.size());
}

// The determinism tentpole at the index level: with nprobe >= num_clusters
// the rescore-all branch must reproduce the exact serving order and exact
// float scores, for every ANN-able model family.
TEST(TailIndexTest, FullProbeMatchesExactTopKBitwise) {
  util::Rng rng(14);
  const size_t E = 700, R = 5, D = 24;
  std::vector<std::unique_ptr<kge::KgeModel>> models;
  models.push_back(std::make_unique<kge::TransE>(E, R, D, 1.0f, &rng));
  models.push_back(std::make_unique<kge::DistMult>(E, R, D, &rng));
  models.push_back(std::make_unique<kge::ComplEx>(E, R, D / 2, &rng));
  for (auto& model : models) {
    model->PrepareEval();
    IvfOptions opts;
    opts.num_clusters = 12;
    auto index = TailIndex::Build(model.get(), opts);
    ASSERT_NE(index, nullptr) << model->name();
    for (uint32_t h = 0; h < 25; ++h) {
      const uint32_t r = h % R;
      for (size_t k : {size_t{1}, size_t{10}, size_t{64}}) {
        std::vector<Candidate> got;
        SearchStats st;
        index->SearchTopK(h, r, k, /*nprobe=*/opts.num_clusters, &got, &st);
        std::vector<Candidate> want = ReferenceTopK(model.get(), h, r, k);
        ASSERT_EQ(got.size(), want.size()) << model->name();
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].id, want[i].id)
              << model->name() << " h=" << h << " k=" << k << " i=" << i;
          // Bitwise: the rescore runs the same kernel with the same
          // argument order as the exact scan.
          ASSERT_EQ(std::memcmp(&got[i].score, &want[i].score,
                                sizeof(float)),
                    0)
              << model->name() << " h=" << h << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

// The CI recall gate (scripts/check_all.sh filters on AnnRecallGate): on
// clustered data at the default-ish operating point, recall@10 of the
// pruned search vs the exact scan must be >= 0.99.
TEST(AnnRecallGate, RecallAt10AtLeast99Percent) {
  const size_t E = 8000, R = 6, D = 32;
  auto model = MixtureTransE(E, R, D, 15);
  model->PrepareEval();
  IvfOptions opts;
  opts.num_clusters = 64;
  opts.nprobe = 8;
  auto index = TailIndex::Build(model.get(), opts);
  ASSERT_NE(index, nullptr);
  util::Rng rng(16);
  double recall_sum = 0.0;
  const size_t kQueries = 200;
  for (size_t qi = 0; qi < kQueries; ++qi) {
    const uint32_t h = static_cast<uint32_t>(rng.Uniform(E));
    const uint32_t r = static_cast<uint32_t>(rng.Uniform(R));
    std::vector<Candidate> got;
    SearchStats st;
    index->SearchTopK(h, r, 10, 0, &got, &st);
    std::vector<Candidate> want = ReferenceTopK(model.get(), h, r, 10);
    size_t hit = 0;
    for (const Candidate& w : want) {
      for (const Candidate& g : got) {
        if (g.id == w.id) {
          ++hit;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hit) / static_cast<double>(want.size());
  }
  const double recall = recall_sum / static_cast<double>(kQueries);
  EXPECT_GE(recall, 0.99) << "recall@10 over " << kQueries << " queries";
}

// End-to-end determinism: an ANN-enabled engine at nprobe = num_clusters
// must return byte-identical Responses to an exact engine over the same
// model — ids, scores, and order.
TEST(AnnServingTest, FullProbeEngineByteIdenticalToExact) {
  util::Rng rng(17);
  const size_t E = 500, R = 4, D = 16;
  std::vector<std::unique_ptr<kge::KgeModel>> models;
  models.push_back(std::make_unique<kge::TransE>(E, R, D, 1.0f, &rng));
  models.push_back(std::make_unique<kge::DistMult>(E, R, D, &rng));
  models.push_back(std::make_unique<kge::ComplEx>(E, R, D / 2, &rng));
  for (auto& model : models) {
    serve::ServeContext::Bindings exact_b;
    exact_b.model = model.get();
    serve::ServeContext exact_ctx(exact_b);
    serve::ServeContext::Bindings ann_b = exact_b;
    ann_b.ann_enabled = true;
    ann_b.ann.num_clusters = 8;
    ann_b.ann.nprobe = 8;  // full probe: determinism mode
    serve::ServeContext ann_ctx(ann_b);

    serve::EngineOptions opts;
    opts.num_threads = 1;
    opts.cache_enabled = false;
    serve::QueryEngine exact_engine(&exact_ctx, opts);
    serve::QueryEngine ann_engine(&ann_ctx, opts);

    for (uint32_t h = 0; h < 20; ++h) {
      const uint32_t r = h % R;
      // 600 > E exercises the k cap.
      for (size_t k : {size_t{1}, size_t{10}, size_t{600}}) {
        serve::Response ex = exact_engine.LinkPredictTopK(h, r, k);
        serve::Response ap = ann_engine.LinkPredictTopK(h, r, k);
        ASSERT_EQ(ex.status, ap.status) << model->name();
        ASSERT_EQ(ex.payload.topk.size(), ap.payload.topk.size())
            << model->name();
        ASSERT_EQ(std::memcmp(ex.payload.topk.data(), ap.payload.topk.data(),
                              ex.payload.topk.size() *
                                  sizeof(serve::ScoredEntity)),
                  0)
            << model->name() << " h=" << h << " k=" << k;
      }
    }
    EXPECT_GT(ann_engine.ann_stats().queries, 0u) << model->name();
    EXPECT_EQ(ann_engine.ann_stats().exact_fallbacks, 0u) << model->name();
  }
}

// A model without a tail-scan spec under an ANN-enabled context: answers
// still correct (exact path), and the fallback is visible in the metrics.
TEST(AnnServingTest, UnsupportedModelFallsBackExactWithMetrics) {
  util::Rng rng(18);
  const size_t E = 300, R = 4, D = 16;
  kge::TransH model(E, R, D, 1.0f, &rng);
  serve::ServeContext::Bindings exact_b;
  exact_b.model = &model;
  serve::ServeContext exact_ctx(exact_b);
  serve::ServeContext::Bindings ann_b = exact_b;
  ann_b.ann_enabled = true;
  serve::ServeContext ann_ctx(ann_b);
  EXPECT_EQ(ann_ctx.ann_ref(), nullptr);  // no spec -> no index

  serve::EngineOptions opts;
  opts.num_threads = 1;
  opts.cache_enabled = false;
  serve::QueryEngine exact_engine(&exact_ctx, opts);
  serve::QueryEngine ann_engine(&ann_ctx, opts);
  for (uint32_t h = 0; h < 10; ++h) {
    serve::Response ex = exact_engine.LinkPredictTopK(h, h % R, 10);
    serve::Response ap = ann_engine.LinkPredictTopK(h, h % R, 10);
    ASSERT_TRUE(ex.payload.topk == ap.payload.topk) << "h=" << h;
  }
  EXPECT_EQ(ann_engine.ann_stats().queries, 0u);
  EXPECT_EQ(ann_engine.ann_stats().exact_fallbacks, 10u);
}

// The reload/rebuild protocol under live ANN traffic (run under TSan): a
// stale index must never score a new-generation model. With the cache off,
// any query issued after ReloadModel returns pins the new model, so its
// answers must match the new model's exact top-K whether the drain took
// the (rebuilt) index or the exact fallback — a stale-index read would
// surface as a score mismatch here.
TEST(AnnServingTest, ReloadUnderAnnTrafficNeverServesCrossGeneration) {
  const size_t E = 600, R = 4, D = 16;
  std::vector<std::shared_ptr<kge::KgeModel>> keep_alive;
  auto make_model = [&](uint64_t seed) {
    std::shared_ptr<kge::KgeModel> m =
        MixtureTransE(E, R, D, seed, /*centers=*/16);
    keep_alive.push_back(m);
    return m;
  };
  std::shared_ptr<kge::KgeModel> first = make_model(100);
  serve::ServeContext::Bindings b;
  b.model = first.get();
  b.ann_enabled = true;
  b.ann.num_clusters = 16;
  b.ann.nprobe = 4;
  serve::ServeContext ctx(b);
  serve::EngineOptions opts;
  opts.num_threads = 2;
  opts.cache_enabled = false;
  serve::QueryEngine engine(&ctx, opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(500 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint32_t h = static_cast<uint32_t>(rng.Uniform(E));
        serve::Response resp = engine.LinkPredictTopK(
            h, static_cast<uint32_t>(rng.Uniform(R)), 10);
        EXPECT_EQ(resp.status, serve::ServeStatus::kOk);
      }
    });
  }

  util::Rng rng(19);
  for (uint64_t round = 1; round <= 5; ++round) {
    std::shared_ptr<kge::KgeModel> next = make_model(200 + round);
    ctx.ReloadModel(next);
    // Post-reload queries pin the new model; answers must be the new
    // model's exact top-K regardless of which path the drain takes while
    // the rebuild is in flight.
    for (int q = 0; q < 20; ++q) {
      const uint32_t h = static_cast<uint32_t>(rng.Uniform(E));
      const uint32_t r = static_cast<uint32_t>(rng.Uniform(R));
      serve::Response resp = engine.LinkPredictTopK(h, r, 10);
      ASSERT_EQ(resp.status, serve::ServeStatus::kOk);
      std::vector<Candidate> want = ReferenceTopK(next.get(), h, r, 10);
      ASSERT_EQ(resp.payload.topk.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(resp.payload.topk[i].id, want[i].id)
            << "round=" << round << " q=" << q << " i=" << i;
        ASSERT_EQ(resp.payload.topk[i].score, want[i].score)
            << "round=" << round << " q=" << q << " i=" << i;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  // Once the last rebuild lands it must be stamped with the final
  // (model, generation) pair; poll briefly since it runs in background.
  for (int spin = 0; spin < 200; ++spin) {
    auto index = ctx.ann_ref();
    if (index != nullptr && index->built_for() == keep_alive.back().get() &&
        index->model_generation() == ctx.generation()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto index = ctx.ann_ref();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->built_for(), keep_alive.back().get());
  EXPECT_EQ(index->model_generation(), ctx.generation());
}

// Evaluator hook at full probe: ScoreTailsApprox must reproduce the exact
// metrics bitwise, because every entity gets its exact rescored score.
TEST(AnnEvaluatorTest, FullProbeMetricsBitwiseIdenticalToExact) {
  const size_t E = 400, R = 5, D = 16;
  auto model = MixtureTransE(E, R, D, 20, /*centers=*/12);
  model->PrepareEval();
  kge::Dataset ds;
  ds.name = "ann-eval";
  for (size_t e = 0; e < E; ++e) ds.entity_names.push_back("e");
  for (size_t r = 0; r < R; ++r) ds.relation_names.push_back("r");
  util::Rng rng(21);
  auto random_triples = [&](size_t n) {
    std::vector<kge::LpTriple> out(n);
    for (auto& t : out) {
      t.h = static_cast<uint32_t>(rng.Uniform(E));
      t.r = static_cast<uint32_t>(rng.Uniform(R));
      t.t = static_cast<uint32_t>(rng.Uniform(E));
    }
    return out;
  };
  ds.train = random_triples(300);
  ds.dev = random_triples(40);
  ds.test = random_triples(120);

  IvfOptions opts;
  opts.num_clusters = 10;
  auto index = TailIndex::Build(model.get(), opts);
  ASSERT_NE(index, nullptr);

  kge::RankingEvaluator::Options exact_opts;
  exact_opts.filtered = true;
  kge::RankingEvaluator exact_eval(ds, exact_opts);
  kge::RankingMetrics exact = exact_eval.Evaluate(model.get());

  kge::RankingEvaluator::Options ann_opts = exact_opts;
  ann_opts.tail_scorer = [&](const kge::KgeModel&, uint32_t h, uint32_t r,
                             std::vector<float>* out) {
    index->ScoreTailsApprox(h, r, /*depth=*/E,
                            /*nprobe=*/index->num_clusters(), out);
  };
  kge::RankingEvaluator ann_eval(ds, ann_opts);
  kge::RankingMetrics approx = ann_eval.Evaluate(model.get());

  EXPECT_EQ(exact.n, approx.n);
  EXPECT_EQ(exact.hits1, approx.hits1);
  EXPECT_EQ(exact.hits3, approx.hits3);
  EXPECT_EQ(exact.hits10, approx.hits10);
  EXPECT_EQ(exact.mr, approx.mr);
  EXPECT_EQ(exact.mrr, approx.mrr);
}

}  // namespace
}  // namespace openbg::ann
