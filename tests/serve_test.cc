// Tests for the online serving layer (src/serve/): the sharded LRU result
// cache (eviction order, fingerprint collisions, snapshot-generation
// invalidation, concurrent access), the micro-batched query engine
// (correctness vs direct scoring, cached/uncached byte-equality, deadlines
// and load shedding via failpoints, concurrent mixed-endpoint readers on a
// sealed store), live-update serving over rdf::LiveGraph (selective cache
// invalidation, readers concurrent with delta ingest), and the metrics
// surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/openbg.h"
#include "kge/checkpoint.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "rdf/live_graph.h"
#include "serve/engine.h"
#include "serve/health.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "util/clock.h"
#include "util/fault_injection.h"

namespace openbg::serve {
namespace {

std::shared_ptr<const ResultPayload> MakePayload(uint32_t tag) {
  auto p = std::make_shared<ResultPayload>();
  p->topk.push_back(ScoredEntity{tag, static_cast<float>(tag)});
  return p;
}

RequestKey TopKKey(uint64_t h, uint64_t r, uint64_t k) {
  return RequestKey{Endpoint::kLinkPredictTopK, h, r, k, ""};
}

TEST(ResultCacheTest, HitReturnsInsertedPayload) {
  ResultCache cache(8, 1);
  RequestKey key = TopKKey(1, 2, 3);
  uint64_t fp = Fingerprint(key);
  EXPECT_EQ(cache.Lookup(fp, key, 1), nullptr);
  cache.Insert(fp, key, 1, MakePayload(7));
  auto hit = cache.Lookup(fp, key, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->topk[0].id, 7u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, LruEvictionOrder) {
  // Single shard with room for 3: inserting a 4th evicts the least
  // recently *used* entry, not the oldest inserted.
  ResultCache cache(3, 1);
  RequestKey a = TopKKey(1, 0, 1), b = TopKKey(2, 0, 1),
             c = TopKKey(3, 0, 1), d = TopKKey(4, 0, 1);
  cache.Insert(Fingerprint(a), a, 1, MakePayload(1));
  cache.Insert(Fingerprint(b), b, 1, MakePayload(2));
  cache.Insert(Fingerprint(c), c, 1, MakePayload(3));
  // Touch `a` so `b` becomes the LRU victim.
  EXPECT_NE(cache.Lookup(Fingerprint(a), a, 1), nullptr);
  cache.Insert(Fingerprint(d), d, 1, MakePayload(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(cache.Lookup(Fingerprint(a), a, 1), nullptr);
  EXPECT_EQ(cache.Lookup(Fingerprint(b), b, 1), nullptr) << "b not evicted";
  EXPECT_NE(cache.Lookup(Fingerprint(c), c, 1), nullptr);
  EXPECT_NE(cache.Lookup(Fingerprint(d), d, 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, FingerprintCollisionIsMissNeverWrongAnswer) {
  // Force two distinct requests onto one fingerprint: the second lookup
  // must miss (full-key compare), and an insert takes the slot over.
  ResultCache cache(8, 1);
  RequestKey a = TopKKey(1, 0, 1), b = TopKKey(2, 0, 1);
  uint64_t fp = 0x1234;  // deliberately shared
  cache.Insert(fp, a, 1, MakePayload(1));
  EXPECT_EQ(cache.Lookup(fp, b, 1), nullptr);
  EXPECT_EQ(cache.stats().collisions, 1u);
  cache.Insert(fp, b, 1, MakePayload(2));  // last writer wins
  EXPECT_EQ(cache.Lookup(fp, a, 1), nullptr);
  auto hit = cache.Lookup(fp, b, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->topk[0].id, 2u);
}

TEST(ResultCacheTest, GenerationBumpInvalidates) {
  ResultCache cache(8, 2);
  RequestKey key = TopKKey(5, 6, 7);
  uint64_t fp = Fingerprint(key);
  cache.Insert(fp, key, 1, MakePayload(1));
  ASSERT_NE(cache.Lookup(fp, key, 1), nullptr);
  // A reload bumped the generation: the stale entry must not serve, and is
  // lazily erased.
  EXPECT_EQ(cache.Lookup(fp, key, 2), nullptr);
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // Re-inserting under the new generation serves again.
  cache.Insert(fp, key, 2, MakePayload(9));
  ASSERT_NE(cache.Lookup(fp, key, 2), nullptr);
}

TEST(ResultCacheTest, FutureEpochEntryIsMissButNotErased) {
  // Regression for the old `e.gen != gen` check: a reader still pinned to
  // an OLDER epoch than the entry's must get a plain miss — erasing the
  // entry let one lagging reader destroy every freshly inserted answer
  // during a mixed-epoch window.
  ResultCache cache(8, 1);
  RequestKey key = TopKKey(1, 2, 3);
  uint64_t fp = Fingerprint(key);
  cache.Insert(fp, key, /*epoch=*/2, MakePayload(9));
  EXPECT_EQ(cache.Lookup(fp, key, 1), nullptr);  // lagging reader
  EXPECT_EQ(cache.stats().future, 1u);
  EXPECT_EQ(cache.stats().stale, 0u);
  EXPECT_EQ(cache.size(), 1u) << "future-epoch entry must not be erased";
  // The current-epoch reader still hits it.
  ASSERT_NE(cache.Lookup(fp, key, 2), nullptr);
}

TEST(ResultCacheTest, CapacityBudgetHoldsAcrossShards) {
  // The old ceil-rounded split gave capacity 10 over 8 shards 16 real
  // slots. The per-shard budgets must sum to exactly the requested total,
  // and live entries may never exceed it.
  ResultCache cache(10, 8);
  ResultCache::Stats s = cache.stats();
  size_t budget = 0;
  for (size_t c : s.shard_capacity) budget += c;
  EXPECT_EQ(budget, 10u);
  for (uint64_t i = 0; i < 200; ++i) {
    RequestKey key = TopKKey(i, i, 1);
    cache.Insert(Fingerprint(key), key, 1,
                 MakePayload(static_cast<uint32_t>(i)));
  }
  EXPECT_LE(cache.size(), 10u);
  s = cache.stats();
  ASSERT_EQ(s.shard_sizes.size(), s.shard_capacity.size());
  size_t occupied = 0;
  for (size_t i = 0; i < s.shard_sizes.size(); ++i) {
    EXPECT_LE(s.shard_sizes[i], s.shard_capacity[i]) << "shard " << i;
    occupied += s.shard_sizes[i];
  }
  EXPECT_EQ(occupied, cache.size());
}

TEST(ResultCacheTest, SelectiveInvalidationErasesOnlyIntersecting) {
  ResultCache cache(16, 2);
  RequestKey a = TopKKey(1, 0, 1), b = TopKKey(2, 0, 1), c = TopKKey(3, 0, 1);
  cache.Insert(Fingerprint(a), a, 1, MakePayload(1), 5, {100, 200});
  cache.Insert(Fingerprint(b), b, 1, MakePayload(2), 5, {300});
  cache.Insert(Fingerprint(c), c, 1, MakePayload(3), 5, {});  // epoch-only
  EXPECT_EQ(cache.InvalidateTouched(6, {200, 250}), 1u);
  EXPECT_EQ(cache.Lookup(Fingerprint(a), a, 1), nullptr) << "touched entry";
  EXPECT_NE(cache.Lookup(Fingerprint(b), b, 1), nullptr) << "disjoint deps";
  EXPECT_NE(cache.Lookup(Fingerprint(c), c, 1), nullptr) << "no deps";
  EXPECT_EQ(cache.stats().invalidated, 1u);
  // An entry recomputed AT the publish generation survives that publish.
  cache.Insert(Fingerprint(a), a, 1, MakePayload(4), 6, {200});
  EXPECT_EQ(cache.InvalidateTouched(6, {200}), 0u);
  EXPECT_NE(cache.Lookup(Fingerprint(a), a, 1), nullptr);
}

TEST(ResultCacheTest, LateInsertComputedBeforePublishIsRefused) {
  // The in-flight race: a publish lands while a request computed against
  // the pre-publish snapshot is still executing; its insert must not
  // resurrect the invalidated answer.
  ResultCache cache(16, 1);
  RequestKey a = TopKKey(1, 0, 1);
  cache.InvalidateTouched(7, {100});
  cache.Insert(Fingerprint(a), a, 1, MakePayload(1), 5, {100});
  EXPECT_EQ(cache.Lookup(Fingerprint(a), a, 1), nullptr);
  EXPECT_EQ(cache.stats().dropped_inserts, 1u);
  // Same stale generation, disjoint deps: fine.
  RequestKey b = TopKKey(2, 0, 1);
  cache.Insert(Fingerprint(b), b, 1, MakePayload(2), 5, {300});
  EXPECT_NE(cache.Lookup(Fingerprint(b), b, 1), nullptr);
  // Epoch-only entries (no deps) are never dropped by publishes.
  RequestKey c = TopKKey(3, 0, 1);
  cache.Insert(Fingerprint(c), c, 1, MakePayload(3), 5, {});
  EXPECT_NE(cache.Lookup(Fingerprint(c), c, 1), nullptr);
}

TEST(ResultCacheTest, InvalidateAllDropsEverythingAndRaisesFloor) {
  ResultCache cache(16, 2);
  RequestKey a = TopKKey(1, 0, 1);
  cache.Insert(Fingerprint(a), a, 1, MakePayload(1), 3, {100});
  cache.InvalidateAll(9);
  EXPECT_EQ(cache.size(), 0u);
  // Anything computed at or before the floor can no longer prove it was
  // not invalidated (the records are gone): refused.
  cache.Insert(Fingerprint(a), a, 1, MakePayload(2), 8, {500});
  EXPECT_EQ(cache.Lookup(Fingerprint(a), a, 1), nullptr);
  EXPECT_GE(cache.stats().dropped_inserts, 1u);
  // Entries computed after the floor insert normally.
  cache.Insert(Fingerprint(a), a, 1, MakePayload(3), 10, {500});
  EXPECT_NE(cache.Lookup(Fingerprint(a), a, 1), nullptr);
}

TEST(ResultCacheTest, ConcurrentHitMissInsertEightThreads) {
  // 8 threads hammer a small sharded cache with overlapping keys: the test
  // asserts internal-consistency (every hit returns the payload its key
  // inserted) and is the TSan coverage for the shard locking.
  ResultCache cache(64, 8);
  constexpr size_t kThreads = 8, kOps = 2000, kKeys = 96;
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> threads;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (size_t i = 0; i < kOps; ++i) {
        uint64_t id = (ti * 31 + i * 7) % kKeys;
        RequestKey key = TopKKey(id, id + 1, 1);
        uint64_t fp = Fingerprint(key);
        auto hit = cache.Lookup(fp, key, 1);
        if (hit != nullptr) {
          if (hit->topk[0].id != id) wrong.fetch_add(1);
        } else {
          cache.Insert(fp, key, 1, MakePayload(static_cast<uint32_t>(id)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  ResultCache::Stats s = cache.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.inserts, 0u);
}

/// Shared expensive fixture: one small world + trained TransE, reused by
/// every engine test below.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::OpenBG::Options options;
    options.world.seed = 11;
    options.world.scale = 0.25;
    options.world.num_products = 400;
    kg_ = core::OpenBG::Build(options).release();

    bench_builder::BenchmarkSpec spec;
    spec.name = "serve-test";
    spec.num_relations = 12;
    spec.dev_size = 50;
    spec.test_size = 100;
    ds_ = new kge::Dataset(kg_->BuildBenchmark(spec, nullptr));

    util::Rng rng(3);
    model_ = new kge::TransE(ds_->num_entities(), ds_->num_relations(), 16,
                             1.0f, &rng);
    kge::TrainConfig config;
    config.epochs = 2;
    config.batch_size = 256;
    TrainKgeModel(model_, *ds_, config);

    mapper_ = new construction::SchemaMapper(kg_->world().brands);
  }

  static void TearDownTestSuite() {
    delete mapper_;
    delete model_;
    delete ds_;
    delete kg_;
    mapper_ = nullptr;
    model_ = nullptr;
    ds_ = nullptr;
    kg_ = nullptr;
  }

  void TearDown() override { util::failpoints::DisarmAll(); }

  ServeContext::Bindings AllBindings() {
    ServeContext::Bindings b;
    b.graph = &kg_->graph();
    b.ontology = &kg_->ontology();
    b.dataset = ds_;
    b.model = model_;
    b.mapper = mapper_;
    return b;
  }

  static core::OpenBG* kg_;
  static kge::Dataset* ds_;
  static kge::TransE* model_;
  static construction::SchemaMapper* mapper_;
};

core::OpenBG* EngineTest::kg_ = nullptr;
kge::Dataset* EngineTest::ds_ = nullptr;
kge::TransE* EngineTest::model_ = nullptr;
construction::SchemaMapper* EngineTest::mapper_ = nullptr;

// Reference answer: full ScoreTails + stable full sort.
std::vector<ScoredEntity> ReferenceTopK(kge::KgeModel* model, uint32_t h,
                                        uint32_t r, size_t k) {
  std::vector<float> scores;
  model->ScoreTails(h, r, &scores);
  std::vector<ScoredEntity> all(scores.size());
  for (uint32_t i = 0; i < scores.size(); ++i) all[i] = {i, scores[i]};
  std::sort(all.begin(), all.end(),
            [](const ScoredEntity& a, const ScoredEntity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST_F(EngineTest, TopKMatchesReferenceSort) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  for (size_t i = 0; i < 10; ++i) {
    const kge::LpTriple& q = ds_->test[i];
    Response resp = engine.LinkPredictTopK(q.h, q.r, 10);
    ASSERT_EQ(resp.status, ServeStatus::kOk);
    EXPECT_FALSE(resp.from_cache);
    EXPECT_EQ(resp.payload.topk, ReferenceTopK(model_, q.h, q.r, 10));
  }
}

TEST_F(EngineTest, CachedAndUncachedResponsesAreByteIdentical) {
  // The acceptance criterion: same request, unchanged KG — the cached
  // answer equals the recomputed one exactly (and a cache-off engine
  // agrees too).
  ServeContext ctx(AllBindings());
  EngineOptions cached_opts;
  QueryEngine cached(&ctx, cached_opts);
  EngineOptions uncached_opts;
  uncached_opts.cache_enabled = false;
  QueryEngine uncached(&ctx, uncached_opts);

  const kge::LpTriple& q = ds_->test[0];
  Response first = cached.LinkPredictTopK(q.h, q.r, 8);
  Response second = cached.LinkPredictTopK(q.h, q.r, 8);
  Response recomputed = uncached.LinkPredictTopK(q.h, q.r, 8);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  ASSERT_EQ(first.payload.topk.size(), second.payload.topk.size());
  for (size_t i = 0; i < first.payload.topk.size(); ++i) {
    // Bit-exact, not approximately equal.
    EXPECT_EQ(first.payload.topk[i].id, second.payload.topk[i].id);
    EXPECT_EQ(first.payload.topk[i].score, second.payload.topk[i].score);
    EXPECT_EQ(first.payload.topk[i].id, recomputed.payload.topk[i].id);
    EXPECT_EQ(first.payload.topk[i].score, recomputed.payload.topk[i].score);
  }
}

TEST_F(EngineTest, SmallerKIsPrefixOfLargerK) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& q = ds_->test[1];
  Response big = engine.LinkPredictTopK(q.h, q.r, 20);
  Response small = engine.LinkPredictTopK(q.h, q.r, 5);
  ASSERT_EQ(small.payload.topk.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(small.payload.topk[i], big.payload.topk[i]);
  }
}

TEST_F(EngineTest, InvalidArgumentsAreTyped) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  EXPECT_EQ(engine.LinkPredictTopK(0, 0, 0).status,
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(
      engine.LinkPredictTopK(static_cast<uint32_t>(ds_->num_entities()), 0, 5)
          .status,
      ServeStatus::kInvalidArgument);
  EXPECT_EQ(engine.Neighbors(rdf::kInvalidTerm).status,
            ServeStatus::kInvalidArgument);
  // A context with no model bound refuses scoring but still serves reads.
  ServeContext::Bindings graph_only;
  graph_only.graph = &kg_->graph();
  graph_only.ontology = &kg_->ontology();
  ServeContext ctx2(graph_only);
  QueryEngine engine2(&ctx2, EngineOptions{});
  EXPECT_EQ(engine2.LinkPredictTopK(0, 0, 5).status,
            ServeStatus::kInvalidArgument);
  EXPECT_EQ(
      engine2.Neighbors(kg_->assembly().product_terms[0]).status,
      ServeStatus::kOk);
}

TEST_F(EngineTest, NeighborsMatchesStoreMatch) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  rdf::TermId product = kg_->assembly().product_terms[0];
  Response resp = engine.Neighbors(product);
  ASSERT_EQ(resp.status, ServeStatus::kOk);
  size_t out_edges = kg_->graph().store.CountMatches(
      rdf::TriplePattern{product, rdf::TriplePattern::kAny,
                         rdf::TriplePattern::kAny});
  size_t in_edges = kg_->graph().store.CountMatches(
      rdf::TriplePattern{rdf::TriplePattern::kAny, rdf::TriplePattern::kAny,
                         product});
  EXPECT_EQ(resp.payload.triples.size(), out_edges + in_edges);
  for (const rdf::Triple& t : resp.payload.triples) {
    EXPECT_TRUE(t.s == product || t.o == product);
  }
  // Relation-restricted variant agrees with Objects().
  rdf::TermId rel = kg_->ontology().related_scene();
  Response scoped = engine.Neighbors(product, rel);
  EXPECT_EQ(scoped.payload.triples.size(),
            kg_->graph().store.Objects(product, rel).size());
}

TEST_F(EngineTest, ConceptsOfReturnsConceptEdges) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const ontology::Ontology& onto = kg_->ontology();
  // Find a product with at least one scene link.
  for (rdf::TermId product : kg_->assembly().product_terms) {
    size_t scenes =
        kg_->graph().store.Objects(product, onto.related_scene()).size();
    if (scenes == 0) continue;
    Response resp = engine.ConceptsOf(product);
    ASSERT_EQ(resp.status, ServeStatus::kOk);
    size_t got_scenes = 0;
    for (const rdf::Triple& t : resp.payload.triples) {
      EXPECT_EQ(t.s, product);
      if (t.p == onto.related_scene()) ++got_scenes;
    }
    EXPECT_EQ(got_scenes, scenes);
    return;
  }
  FAIL() << "no product with scene links in the test world";
}

TEST_F(EngineTest, EntityLinkResolvesBrandMentions) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  // A canonical brand name must link exactly.
  const datagen::TaxonomyData& brands = kg_->world().brands;
  int leaf = brands.leaves[0];
  Response resp = engine.EntityLink(brands.nodes[leaf].name);
  ASSERT_EQ(resp.status, ServeStatus::kOk);
  EXPECT_EQ(resp.payload.link.node, leaf);
  EXPECT_EQ(resp.payload.link.kind,
            construction::SchemaMapper::MatchKind::kExact);
  // Second call is served from cache with the identical payload.
  Response again = engine.EntityLink(brands.nodes[leaf].name);
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.payload.link.node, resp.payload.link.node);
  EXPECT_EQ(again.payload.link.similarity, resp.payload.link.similarity);
}

TEST_F(EngineTest, ReloadInvalidatesCachedAnswers) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& q = ds_->test[2];
  Response before = engine.LinkPredictTopK(q.h, q.r, 5);
  ASSERT_EQ(before.status, ServeStatus::kOk);
  EXPECT_TRUE(engine.LinkPredictTopK(q.h, q.r, 5).from_cache);

  // Train the model two more epochs (parameters change), reload.
  kge::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 256;
  config.seed = 77;
  TrainKgeModel(model_, *ds_, config);
  ctx.ReloadModel(model_);

  Response after = engine.LinkPredictTopK(q.h, q.r, 5);
  EXPECT_FALSE(after.from_cache) << "stale cached answer served after reload";
  // And the recomputed answer matches the reloaded model's reference.
  EXPECT_EQ(after.payload.topk, ReferenceTopK(model_, q.h, q.r, 5));
  EXPECT_GT(engine.cache().stats().stale, 0u);
}

TEST_F(EngineTest, DeadlineExceededIsTypedNotBlocking) {
  // serve::stall delays every batch drain by ~5ms; a 1us deadline is
  // guaranteed to lapse, so the request must come back kDeadlineExceeded.
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  util::failpoints::Arm("serve::stall");
  const kge::LpTriple& q = ds_->test[3];
  Response resp = engine.LinkPredictTopK(q.h, q.r, 5, /*deadline_us=*/1);
  EXPECT_EQ(resp.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(resp.payload.topk.empty());
  util::failpoints::Disarm("serve::stall");
  // Without the stall the same request succeeds.
  Response ok = engine.LinkPredictTopK(q.h, q.r, 5, /*deadline_us=*/0);
  EXPECT_EQ(ok.status, ServeStatus::kOk);
}

TEST_F(EngineTest, OverloadShedsMissesButServesCachedAnswers) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& warm = ds_->test[4];
  const kge::LpTriple& cold = ds_->test[5];
  ASSERT_EQ(engine.LinkPredictTopK(warm.h, warm.r, 5).status,
            ServeStatus::kOk);

  util::failpoints::Arm("serve::overload");
  // Cache-only degraded mode: the warmed query still answers...
  Response hit = engine.LinkPredictTopK(warm.h, warm.r, 5);
  EXPECT_EQ(hit.status, ServeStatus::kOk);
  EXPECT_TRUE(hit.from_cache);
  // ...while an uncached one is shed with a typed status.
  Response shed = engine.LinkPredictTopK(cold.h, cold.r, 7);
  EXPECT_EQ(shed.status, ServeStatus::kShed);
  util::failpoints::Disarm("serve::overload");
  EXPECT_EQ(engine.LinkPredictTopK(cold.h, cold.r, 7).status,
            ServeStatus::kOk);
}

TEST_F(EngineTest, QueueFullSheds) {
  // max_queue 0 normalizes to 1; with the drain stalled, concurrent
  // requests beyond the bound are shed rather than queued without limit.
  ServeContext ctx(AllBindings());
  EngineOptions opts;
  opts.max_queue = 1;
  opts.num_threads = 1;
  QueryEngine engine(&ctx, opts);
  util::failpoints::Arm("serve::stall");
  std::atomic<int> shed{0}, okd{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      const kge::LpTriple& q = ds_->test[6 + c];
      Response r = engine.LinkPredictTopK(q.h, q.r, 3);
      if (r.status == ServeStatus::kShed) shed.fetch_add(1);
      if (r.status == ServeStatus::kOk) okd.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  util::failpoints::DisarmAll();
  EXPECT_EQ(shed.load() + okd.load(), 8);
  EXPECT_GT(okd.load(), 0) << "admitted requests must still complete";
}

TEST_F(EngineTest, ConcurrentMixedReadersOnSealedStore) {
  // The TSan-covered serve-path test: 8 client threads hit every endpoint
  // concurrently against the sealed store and prepared model; all answers
  // must match the single-threaded reference.
  ServeContext ctx(AllBindings());
  EngineOptions opts;
  opts.num_threads = 4;
  opts.max_batch = 16;
  QueryEngine engine(&ctx, opts);
  ASSERT_TRUE(kg_->graph().store.IndexesSealed());

  constexpr size_t kThreads = 8, kIters = 40;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      for (size_t i = 0; i < kIters; ++i) {
        const kge::LpTriple& q = ds_->test[(ti * 13 + i) % ds_->test.size()];
        Response topk = engine.LinkPredictTopK(q.h, q.r, 5);
        if (topk.status != ServeStatus::kOk ||
            topk.payload.topk != ReferenceTopK(model_, q.h, q.r, 5)) {
          mismatches.fetch_add(1);
        }
        rdf::TermId product =
            kg_->assembly().product_terms[(ti + i) %
                                          kg_->assembly()
                                              .product_terms.size()];
        if (engine.Neighbors(product).status != ServeStatus::kOk) {
          mismatches.fetch_add(1);
        }
        if (engine.ConceptsOf(product).status != ServeStatus::kOk) {
          mismatches.fetch_add(1);
        }
        const datagen::Product& p =
            kg_->world().products[(ti * 7 + i) %
                                  kg_->world().products.size()];
        if (!p.brand_mention.empty() &&
            engine.EntityLink(p.brand_mention).status != ServeStatus::kOk) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_TRUE(kg_->graph().store.IndexesSealed())
      << "a serve-path read rebuilt an index";
}

TEST_F(EngineTest, CoalescingAnswersIdenticalRequestsFromOneScan) {
  // Many concurrent requests for the same (h, r): all get the same
  // correct answer, and the engine needs far fewer scans than requests
  // (scan count is bounded by drains, observable via cache inserts).
  ServeContext ctx(AllBindings());
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine(&ctx, opts);
  const kge::LpTriple& q = ds_->test[7];
  std::vector<ScoredEntity> expected = ReferenceTopK(model_, q.h, q.r, 6);
  constexpr size_t kThreads = 8;
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> threads;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        Response r = engine.LinkPredictTopK(q.h, q.r, 6);
        if (r.status != ServeStatus::kOk || r.payload.topk != expected) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
}

TEST_F(EngineTest, MetricsJsonCountsRequests) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& q = ds_->test[8];
  engine.LinkPredictTopK(q.h, q.r, 5);
  engine.LinkPredictTopK(q.h, q.r, 5);  // cache hit
  engine.Neighbors(kg_->assembly().product_terms[1]);
  std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"link_predict_topk\":{\"requests\":2,"
                      "\"cache_hits\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"neighbors\":{\"requests\":1"), std::string::npos);
  EXPECT_NE(json.find("\"generation\":"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_generation\":"), std::string::npos);
  EXPECT_NE(json.find("\"shard_sizes\":"), std::string::npos);
  EXPECT_NE(json.find("\"cache\":{\"enabled\":true"), std::string::npos);

  std::vector<EndpointSnapshot> snap = engine.metrics().Snapshot();
  EXPECT_EQ(snap[static_cast<size_t>(Endpoint::kLinkPredictTopK)].requests,
            2u);
  EXPECT_EQ(snap[static_cast<size_t>(Endpoint::kLinkPredictTopK)].cache_hits,
            1u);
}

TEST_F(EngineTest, MetricsScrapeIsSafeAgainstLiveTraffic) {
  // Regression test: MetricsJson() used to fold the per-thread latency
  // histograms with no synchronization against recording threads, so a
  // scraper polling under live traffic read torn counters and could
  // use-after-free inside Histogram::Merge. A scraper now polls
  // continuously while 8 clients drive traffic (TSan pins the per-slot
  // locking), and the final snapshot must account for every request.
  ServeContext ctx(AllBindings());
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine(&ctx, opts);

  constexpr size_t kThreads = 8, kIters = 40;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string json = engine.MetricsJson();
      EXPECT_NE(json.find("\"endpoints\""), std::string::npos);
    }
  });
  std::vector<std::thread> clients;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    clients.emplace_back([&, ti] {
      for (size_t i = 0; i < kIters; ++i) {
        const kge::LpTriple& q = ds_->test[(ti * 11 + i) % ds_->test.size()];
        engine.LinkPredictTopK(q.h, q.r, 4);
        rdf::TermId product =
            kg_->assembly().product_terms[(ti + i) %
                                          kg_->assembly()
                                              .product_terms.size()];
        engine.Neighbors(product);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  std::vector<EndpointSnapshot> snap = engine.metrics().Snapshot();
  EXPECT_EQ(snap[static_cast<size_t>(Endpoint::kLinkPredictTopK)].requests,
            kThreads * kIters);
  EXPECT_EQ(snap[static_cast<size_t>(Endpoint::kNeighbors)].requests,
            kThreads * kIters);
}

TEST_F(EngineTest, SharedMapperAcrossEnginesIsRaceFree) {
  // Regression test: two engines bound to one SchemaMapper used to race on
  // its stats counters, because each engine serialized Link() with its own
  // private mutex. The mapper now guards its own mutable state; with
  // caching off every EntityLink reaches Link(), so the total must be
  // exact.
  construction::SchemaMapper mapper(kg_->world().brands);
  ServeContext::Bindings bindings;
  bindings.mapper = &mapper;
  ServeContext ctx(bindings);
  EngineOptions opts;
  opts.cache_enabled = false;
  QueryEngine first(&ctx, opts);
  QueryEngine second(&ctx, opts);

  constexpr size_t kThreads = 8, kIters = 50;
  std::vector<std::thread> threads;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      QueryEngine& engine = (ti % 2 == 0) ? first : second;
      for (size_t i = 0; i < kIters; ++i) {
        const datagen::Product& p =
            kg_->world().products[(ti * 17 + i) %
                                  kg_->world().products.size()];
        Response r = engine.EntityLink(
            p.brand_mention.empty() ? "no-such-brand" : p.brand_mention);
        EXPECT_EQ(r.status, ServeStatus::kOk);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mapper.stats().total, kThreads * kIters);
}

TEST_F(EngineTest, LiveDeltaPublishInvalidatesSelectively) {
  // The acceptance scenario for selective invalidation: after a delta
  // publish touching one entity, only cache entries depending on the
  // touched entities are recomputed. Everything else — other neighbor
  // answers, and all model-space top-k answers (domain-separated keys) —
  // keeps serving from cache instead of the old full nuke.
  rdf::LiveGraph live(rdf::LiveGraph::Alias(&kg_->graph().store));
  ServeContext::Bindings bindings = AllBindings();
  bindings.live = &live;
  ServeContext ctx(bindings);
  QueryEngine engine(&ctx, EngineOptions{});

  rdf::TermId pa = kg_->assembly().product_terms[0];
  rdf::TermId pb = kg_->assembly().product_terms[1];
  rdf::TermId pc = kg_->assembly().product_terms[2];
  Response na = engine.Neighbors(pa);
  ASSERT_EQ(na.status, ServeStatus::kOk);
  ASSERT_EQ(engine.Neighbors(pb).status, ServeStatus::kOk);
  ASSERT_EQ(engine.Neighbors(pc).status, ServeStatus::kOk);
  const kge::LpTriple& q = ds_->test[9];
  ASSERT_EQ(engine.LinkPredictTopK(q.h, q.r, 5).status, ServeStatus::kOk);
  EXPECT_TRUE(engine.Neighbors(pa).from_cache);

  // Publish one new edge pa -> pb. Touched set = {pa, pb}.
  rdf::TermId rel = kg_->ontology().related_scene();
  rdf::UpdateBatch batch;
  batch.adds.push_back({pa, rel, pb});
  ASSERT_TRUE(live.Apply(batch).ok());
  EXPECT_EQ(live.generation(), 2u);

  Response nc = engine.Neighbors(pc);
  EXPECT_TRUE(nc.from_cache) << "untouched entity lost its cached answer";
  Response topk = engine.LinkPredictTopK(q.h, q.r, 5);
  EXPECT_TRUE(topk.from_cache) << "graph delta nuked a model-space answer";

  Response na2 = engine.Neighbors(pa);
  EXPECT_FALSE(na2.from_cache) << "touched entity served a stale answer";
  EXPECT_EQ(na2.payload.triples.size(), na.payload.triples.size() + 1);
  EXPECT_NE(std::find(na2.payload.triples.begin(), na2.payload.triples.end(),
                      rdf::Triple{pa, rel, pb}),
            na2.payload.triples.end());
  EXPECT_FALSE(engine.Neighbors(pb).from_cache)
      << "the object side of the new edge is touched too";
  // Once recomputed at the new generation, the answers cache again.
  EXPECT_TRUE(engine.Neighbors(pa).from_cache);
  EXPECT_TRUE(engine.Neighbors(pb).from_cache);
}

TEST_F(EngineTest, ConcurrentReadersDuringLiveIngest) {
  // The ISSUE's 8-thread acceptance test at the engine level: 7 reader
  // threads keep serving mixed endpoints while a writer publishes delta
  // batches. Readers must never fail, never block on a publish, and the
  // final answer must reflect the last published edge. Run under TSan via
  // the tsan preset.
  rdf::LiveGraph live(rdf::LiveGraph::Alias(&kg_->graph().store));
  ServeContext::Bindings bindings = AllBindings();
  bindings.live = &live;
  ServeContext ctx(bindings);
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine(&ctx, opts);

  const std::vector<rdf::TermId>& products = kg_->assembly().product_terms;
  rdf::TermId rel = kg_->ontology().related_scene();
  constexpr size_t kReaders = 7, kIters = 40, kBatches = 60;
  std::atomic<size_t> failures{0};

  std::vector<std::thread> readers;
  for (size_t ti = 0; ti < kReaders; ++ti) {
    readers.emplace_back([&, ti] {
      for (size_t i = 0; i < kIters; ++i) {
        rdf::TermId product = products[(ti * 31 + i) % products.size()];
        if (engine.Neighbors(product).status != ServeStatus::kOk) ++failures;
        if (engine.ConceptsOf(product).status != ServeStatus::kOk) ++failures;
        const kge::LpTriple& q = ds_->test[(ti * 13 + i) % ds_->test.size()];
        if (engine.LinkPredictTopK(q.h, q.r, 5).status != ServeStatus::kOk) {
          ++failures;
        }
      }
    });
  }
  std::thread writer([&] {
    for (size_t i = 0; i + 1 < kBatches && i + 1 < products.size(); ++i) {
      rdf::UpdateBatch batch;
      batch.adds.push_back({products[i], rel, products[i + 1]});
      if (!live.Apply(batch).ok()) ++failures;
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(live.generation(), 1u + (kBatches - 1));

  // A fresh query sees the last published edge (any cached answer that
  // intersected the publish was invalidated or refused on insert).
  rdf::TermId last_s = products[kBatches - 2];
  rdf::TermId last_o = products[kBatches - 1];
  Response resp = engine.Neighbors(last_s);
  ASSERT_EQ(resp.status, ServeStatus::kOk);
  EXPECT_NE(std::find(resp.payload.triples.begin(), resp.payload.triples.end(),
                      rdf::Triple{last_s, rel, last_o}),
            resp.payload.triples.end());
}

// ---------------------------------------------------------------------------
// Degraded-mode serving, circuit breaking, and fault-tolerant reload
// (chaos-hardening ISSUE).

/// Breaker tuned to trip after 2 failures and recover after a 2ms
/// cooldown with a single probe — keeps the tests fast and deterministic.
EngineOptions FastBreakerOptions() {
  EngineOptions opts;
  opts.breaker.window = 8;
  opts.breaker.min_samples = 2;
  opts.breaker.failure_threshold = 0.5;
  opts.breaker.open_cooldown_us = 2'000;
  opts.breaker.half_open_probes = 1;
  return opts;
}

TEST_F(EngineTest, ModelFaultTripsBreakerAndServesCachedAnswersDegraded) {
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, FastBreakerOptions());
  const kge::LpTriple& warm = ds_->test[0];
  Response before = engine.LinkPredictTopK(warm.h, warm.r, 5);
  ASSERT_EQ(before.status, ServeStatus::kOk);

  // Model scoring starts failing: cold queries come back kDegraded (and
  // count against the breaker), two of them trip it open.
  util::failpoints::Arm("serve::model_fault");
  for (int i = 1; i <= 2; ++i) {
    const kge::LpTriple& cold = ds_->test[i];
    Response r = engine.LinkPredictTopK(cold.h, cold.r, 5);
    EXPECT_EQ(r.status, ServeStatus::kDegraded);
    EXPECT_TRUE(r.degraded);
    EXPECT_TRUE(r.payload.topk.empty());
  }
  EXPECT_EQ(engine.breaker(Endpoint::kLinkPredictTopK).state(),
            util::CircuitBreaker::State::kOpen);

  // Open breaker: the warmed query still answers from cache — flagged
  // degraded, byte-identical to the pre-fault answer...
  Response hit = engine.LinkPredictTopK(warm.h, warm.r, 5);
  EXPECT_EQ(hit.status, ServeStatus::kOk);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_TRUE(hit.degraded);
  ASSERT_EQ(hit.payload.topk.size(), before.payload.topk.size());
  for (size_t i = 0; i < hit.payload.topk.size(); ++i) {
    EXPECT_EQ(hit.payload.topk[i].id, before.payload.topk[i].id);
    EXPECT_EQ(hit.payload.topk[i].score, before.payload.topk[i].score);
  }
  // ...while a cold miss fast-fails without touching the broken model.
  const kge::LpTriple& cold = ds_->test[3];
  Response miss = engine.LinkPredictTopK(cold.h, cold.r, 5);
  EXPECT_EQ(miss.status, ServeStatus::kDegraded);
  EXPECT_TRUE(miss.degraded);

  // Health reflects the open breaker, and the metrics surface carries the
  // breaker + degraded counters.
  HealthState health = engine.ComputeHealth();
  EXPECT_EQ(health.model.health, Health::kUnhealthy);
  EXPECT_EQ(health.overall(), Health::kUnhealthy);
  std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"breakers\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);

  // Fault clears; after the cooldown the next request is admitted as the
  // half-open probe, succeeds, and recloses the breaker.
  util::failpoints::Disarm("serve::model_fault");
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  Response probe = engine.LinkPredictTopK(cold.h, cold.r, 5);
  EXPECT_EQ(probe.status, ServeStatus::kOk);
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(probe.payload.topk, ReferenceTopK(model_, cold.h, cold.r, 5));
  EXPECT_EQ(engine.breaker(Endpoint::kLinkPredictTopK).state(),
            util::CircuitBreaker::State::kClosed);
  EXPECT_EQ(engine.ComputeHealth().overall(), Health::kHealthy);
}

TEST_F(EngineTest, GraphAndLinkFaultsAreBrokenPerEndpoint) {
  // Each endpoint has its own breaker: tripping Neighbors must not reject
  // LinkPredictTopK traffic.
  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, FastBreakerOptions());

  util::failpoints::Arm("serve::graph_fault");
  for (int i = 0; i < 2; ++i) {
    Response r = engine.Neighbors(kg_->assembly().product_terms[i]);
    EXPECT_EQ(r.status, ServeStatus::kDegraded);
  }
  EXPECT_EQ(engine.breaker(Endpoint::kNeighbors).state(),
            util::CircuitBreaker::State::kOpen);
  util::failpoints::Disarm("serve::graph_fault");

  const kge::LpTriple& q = ds_->test[4];
  EXPECT_EQ(engine.LinkPredictTopK(q.h, q.r, 5).status, ServeStatus::kOk)
      << "LinkPredictTopK must be unaffected by the Neighbors breaker";
  EXPECT_EQ(engine.breaker(Endpoint::kLinkPredictTopK).state(),
            util::CircuitBreaker::State::kClosed);

  util::failpoints::Arm("serve::link_fault");
  Response link = engine.EntityLink("anything");
  EXPECT_EQ(link.status, ServeStatus::kDegraded);
  util::failpoints::Disarm("serve::link_fault");
}

TEST_F(EngineTest, ReloadRetriesTransientCheckpointFault) {
  // A fire_count=1 fault on checkpoint::read: the first read attempt
  // fails, the retry succeeds, and the reload lands normally.
  std::string path = ::testing::TempDir() + "/serve_reload_ok.obgckpt";
  kge::TrainerCheckpoint ckpt;
  ckpt.model_name = model_->name();
  ASSERT_TRUE(kge::SaveCheckpoint(ckpt, model_, path).ok());

  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& q = ds_->test[5];
  ASSERT_EQ(engine.LinkPredictTopK(q.h, q.r, 5).status, ServeStatus::kOk);

  util::Rng rng(123);
  auto staging = std::make_shared<kge::TransE>(
      ds_->num_entities(), ds_->num_relations(), 16, 1.0f, &rng);
  util::failpoints::FailpointSpec spec;
  spec.fire_count = 1;
  util::failpoints::ArmSpec("checkpoint::read", spec);
  util::FakeClock clock;
  util::RetryOptions retry;
  retry.clock = &clock;
  ASSERT_TRUE(ctx.ReloadModelFromCheckpoint(path, staging, retry).ok());

  ServeContext::ReloadStats stats = ctx.reload_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_FALSE(stats.last_failed);
  // The reload bumped the epoch: the warmed answer was invalidated and the
  // next query recomputes against the reloaded parameters.
  Response after = engine.LinkPredictTopK(q.h, q.r, 5);
  EXPECT_EQ(after.status, ServeStatus::kOk);
  EXPECT_FALSE(after.from_cache);
  std::remove(path.c_str());
}

TEST_F(EngineTest, FailedReloadKeepsServingGenerationN) {
  // The acceptance criterion: truncation or a bit-flip in the new
  // checkpoint during a live reload must leave the engine serving
  // generation N answers byte-identical to before, cache intact.
  std::string good = ::testing::TempDir() + "/serve_reload_good.obgckpt";
  kge::TrainerCheckpoint ckpt;
  ckpt.model_name = model_->name();
  ASSERT_TRUE(kge::SaveCheckpoint(ckpt, model_, good).ok());
  util::Result<uint64_t> size = util::FileSize(good);
  ASSERT_TRUE(size.ok());

  ServeContext ctx(AllBindings());
  QueryEngine engine(&ctx, EngineOptions{});
  const kge::LpTriple& q = ds_->test[6];
  Response before = engine.LinkPredictTopK(q.h, q.r, 5);
  ASSERT_EQ(before.status, ServeStatus::kOk);

  util::Rng rng(124);
  auto staging = std::make_shared<kge::TransE>(
      ds_->num_entities(), ds_->num_relations(), 16, 1.0f, &rng);
  util::FakeClock clock;
  util::RetryOptions retry;
  retry.clock = &clock;

  // Corruption 1: the checkpoint was torn mid-write.
  std::string torn = ::testing::TempDir() + "/serve_reload_torn.obgckpt";
  {
    std::ifstream in(good, std::ios::binary);
    std::ofstream out(torn, std::ios::binary);
    out << in.rdbuf();
  }
  ASSERT_TRUE(util::TruncateFile(torn, size.value() / 2).ok());
  EXPECT_FALSE(ctx.ReloadModelFromCheckpoint(torn, staging, retry).ok());
  // Corruption 2: a flipped bit in the parameter block breaks the CRC.
  std::string rotten = ::testing::TempDir() + "/serve_reload_rot.obgckpt";
  {
    std::ifstream in(good, std::ios::binary);
    std::ofstream out(rotten, std::ios::binary);
    out << in.rdbuf();
  }
  ASSERT_TRUE(util::FlipBit(rotten, size.value() / 2, 2).ok());
  EXPECT_FALSE(ctx.ReloadModelFromCheckpoint(rotten, staging, retry).ok());
  // Corruption 3: the read itself keeps failing past the retry budget.
  util::failpoints::Arm("checkpoint::read");
  EXPECT_FALSE(ctx.ReloadModelFromCheckpoint(good, staging, retry).ok());
  util::failpoints::Disarm("checkpoint::read");

  ServeContext::ReloadStats stats = ctx.reload_stats();
  EXPECT_EQ(stats.failures, 3u);
  EXPECT_EQ(stats.successes, 0u);
  EXPECT_TRUE(stats.last_failed);
  EXPECT_EQ(engine.ComputeHealth().model.health, Health::kDegraded);

  // Generation N keeps serving: the warmed answer is still cached and
  // byte-identical, and cold queries still compute against the old model.
  Response after = engine.LinkPredictTopK(q.h, q.r, 5);
  ASSERT_EQ(after.status, ServeStatus::kOk);
  EXPECT_TRUE(after.from_cache) << "failed reload must not invalidate cache";
  ASSERT_EQ(after.payload.topk.size(), before.payload.topk.size());
  for (size_t i = 0; i < after.payload.topk.size(); ++i) {
    EXPECT_EQ(after.payload.topk[i].id, before.payload.topk[i].id);
    EXPECT_EQ(after.payload.topk[i].score, before.payload.topk[i].score);
  }
  EXPECT_EQ(engine.cache().stats().stale, 0u);

  // The next good reload clears the failure flag.
  ASSERT_TRUE(ctx.ReloadModelFromCheckpoint(good, staging, retry).ok());
  EXPECT_FALSE(ctx.reload_stats().last_failed);
  EXPECT_EQ(engine.ComputeHealth().model.health, Health::kHealthy);
  std::remove(good.c_str());
  std::remove(torn.c_str());
  std::remove(rotten.c_str());
}

TEST_F(EngineTest, HealthStateTracksLiveGraphFailures) {
  rdf::LiveGraph live(rdf::LiveGraph::Alias(&kg_->graph().store));
  ServeContext::Bindings bindings = AllBindings();
  bindings.live = &live;
  ServeContext ctx(bindings);
  QueryEngine engine(&ctx, EngineOptions{});
  EXPECT_EQ(engine.ComputeHealth().live_graph.health, Health::kHealthy);

  std::string json = engine.MetricsJson();
  EXPECT_NE(json.find("\"live_graph\""), std::string::npos);
  EXPECT_NE(json.find("\"publish_failures\""), std::string::npos);
}

}  // namespace
}  // namespace openbg::serve
