// Product linking: the Sec. II-B schema-mapping pipeline in isolation.
// Resolves noisy brand mentions (exact names, registered synonyms,
// misspellings) against the Brand taxonomy with the trie + fuzzy matcher,
// and reports per-stage statistics and accuracy.

#include <cstdio>

#include "construction/schema_mapper.h"
#include "datagen/world.h"

int main() {
  using namespace openbg;

  datagen::WorldSpec spec;
  spec.seed = 11;
  spec.num_products = 1500;
  spec.mention_typo_prob = 0.2;   // noisy sellers
  spec.mention_alias_prob = 0.25;
  datagen::World world = datagen::GenerateWorld(spec);

  construction::SchemaMapper mapper(world.brands, /*min_similarity=*/0.8);
  size_t correct = 0, total = 0;
  for (const datagen::Product& p : world.products) {
    if (p.brand < 0) continue;
    construction::SchemaMapper::LinkResult r = mapper.Link(p.brand_mention);
    ++total;
    if (r.node == p.brand) ++correct;
    if (total <= 6) {  // show a few example resolutions
      const char* kind =
          r.kind == construction::SchemaMapper::MatchKind::kExact ? "exact"
          : r.kind == construction::SchemaMapper::MatchKind::kSynonym
              ? "synonym"
          : r.kind == construction::SchemaMapper::MatchKind::kFuzzy
              ? "fuzzy"
              : "MISS";
      std::printf("  \"%s\" -> %s  [%s, sim %.2f]%s\n",
                  p.brand_mention.c_str(),
                  r.node >= 0 ? world.brands.nodes[r.node].name.c_str()
                              : "-",
                  kind, r.similarity,
                  r.node == p.brand ? "" : "  <- WRONG");
    }
  }
  const auto& s = mapper.stats();
  std::printf("\nlinked %zu brand mentions: exact=%zu synonym=%zu fuzzy=%zu "
              "miss=%zu\n", s.total, s.exact, s.synonym, s.fuzzy, s.miss);
  std::printf("accuracy: %.1f%%\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(total));

  // Contrast with the trie-only baseline (no fuzzy fallback).
  std::vector<std::string> mentions;
  std::vector<int> gold;
  for (const datagen::Product& p : world.products) {
    if (p.brand >= 0) {
      mentions.push_back(p.brand_mention);
      gold.push_back(p.brand);
    }
  }
  auto trie_only = construction::SchemaMapper::Evaluate(
      world.brands, mentions, gold, /*use_fuzzy=*/false);
  std::printf("trie-only baseline accuracy: %.1f%% — the fuzzy stage "
              "recovers the rest\n", 100.0 * trie_only.accuracy);
  return 0;
}
