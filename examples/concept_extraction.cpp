// Concept extraction: the Sec. II-C pipeline — train the (BERT-)CRF
// sequence labeler on annotated titles, extract attribute-value concepts
// from unseen titles, then score candidate <category, relatedScene, scene>
// statements with the four-facet commonsense model.

#include <cstdio>

#include "construction/concept_extractor.h"
#include "construction/concept_quality.h"
#include "datagen/world.h"
#include "util/string_util.h"

int main() {
  using namespace openbg;

  datagen::WorldSpec spec;
  spec.seed = 5;
  spec.scale = 0.3;
  spec.num_products = 1200;
  datagen::World world = datagen::GenerateWorld(spec);

  // 1. Train the CRF on 80% of the annotated titles.
  std::vector<crf::Sequence> train, test;
  std::vector<size_t> test_idx;
  for (size_t i = 0; i < world.products.size(); ++i) {
    const datagen::Product& p = world.products[i];
    crf::Sequence seq = construction::ConceptExtractor::MakeSequence(
        p.title_tokens, p.title_spans);
    if (i % 5 == 0) {
      test.push_back(seq);
      test_idx.push_back(i);
    } else {
      train.push_back(seq);
    }
  }
  construction::ConceptExtractor extractor(world.attribute_types.size(),
                                           1 << 16);
  util::Rng rng(3);
  std::printf("training CRF on %zu annotated titles...\n", train.size());
  extractor.Train(train, /*epochs=*/5, /*lr=*/0.3, &rng);
  crf::SpanPrf prf = extractor.Evaluate(test);
  std::printf("held-out span P/R/F1: %.3f / %.3f / %.3f\n\n", prf.precision,
              prf.recall, prf.f1);

  // 2. Extract from one unseen title.
  const datagen::Product& p = world.products[test_idx[0]];
  std::printf("title: %s\n", util::Join(p.title_tokens, " ").c_str());
  for (const construction::ExtractedSpan& sp :
       extractor.Extract(p.title_tokens)) {
    std::printf("  [%s: %s]\n",
                world.attribute_types[sp.type].name.c_str(),
                sp.text.c_str());
  }

  // 3. Facet scoring of concept statements (plausibility / typicality /
  // remarkability / salience).
  construction::ConceptQualityScorer scorer(world,
                                            ontology::CoreKind::kScene);
  std::printf("\nfacets of <%s, relatedScene, %s>:\n",
              world.categories.nodes[p.category].name.c_str(),
              world.scenes.nodes[p.scenes[0]].name.c_str());
  construction::FacetScores f = scorer.Score(p.category, p.scenes[0]);
  std::printf("  plausibility=%.2f typicality=%.2f remarkability=%.2f "
              "salience=%.2f\n", f.plausibility, f.typicality,
              f.remarkability, f.salience);

  auto salient = scorer.SalientStatements();
  std::printf("\n%zu salient statements in the KG; a few examples:\n",
              salient.size());
  for (size_t i = 0; i < std::min<size_t>(5, salient.size()); ++i) {
    std::printf("  <%s, relatedScene, %s>  (salience %.2f)\n",
                world.categories.nodes[salient[i].category_leaf].name.c_str(),
                world.scenes.nodes[salient[i].concept_leaf].name.c_str(),
                salient[i].scores.salience);
  }
  return 0;
}
