// Example: the online serving layer. Builds a small KG, trains a TransE
// model, stands up a QueryEngine (micro-batching + sharded result cache +
// admission control), and walks through each endpoint: link-prediction
// top-K (cold, then served from cache), entity linking, graph neighbors,
// concept lookup, a model reload that invalidates the cache, the ANN
// (IVF + int8) scoring path and its full-probe exactness mode, and finally
// the JSON metrics snapshot a scraper would poll.

#include <cstdio>
#include <memory>

#include "core/openbg.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "serve/engine.h"

using openbg::core::OpenBG;
namespace serve = openbg::serve;
namespace kge = openbg::kge;

int main() {
  OpenBG::Options options;
  options.world.scale = 0.25;
  options.world.num_products = 800;
  options.world.seed = 5;
  std::printf("building knowledge graph...\n");
  std::unique_ptr<OpenBG> kg = OpenBG::Build(options);

  openbg::bench_builder::BenchmarkSpec spec;
  spec.name = "serving-demo";
  spec.num_relations = 16;
  spec.dev_size = 50;
  spec.test_size = 100;
  kge::Dataset ds = kg->BuildBenchmark(spec);

  openbg::util::Rng rng(1);
  kge::TransE model(ds.num_entities(), ds.num_relations(), 32, 1.0f, &rng);
  kge::TrainConfig config;
  config.epochs = 5;
  std::printf("training TransE on %zu triples...\n", ds.train.size());
  TrainKgeModel(&model, ds, config);

  openbg::construction::SchemaMapper mapper(kg->world().brands);

  // Bind everything into a serving context. The constructor seals the
  // triple-store indexes so every serve-path read is lock-free.
  serve::ServeContext::Bindings bindings;
  bindings.graph = &kg->graph();
  bindings.ontology = &kg->ontology();
  bindings.dataset = &ds;
  bindings.model = &model;
  bindings.mapper = &mapper;
  serve::ServeContext ctx(bindings);

  serve::EngineOptions opts;
  opts.num_threads = 2;
  serve::QueryEngine engine(&ctx, opts);

  // --- LinkPredictTopK: cold, then answered from the result cache. ---
  const kge::LpTriple& query = ds.test[0];
  std::printf("\n[link_predict_topk] head=\"%s\" relation=\"%s\"\n",
              ds.entity_names[query.h].c_str(),
              ds.relation_names[query.r].c_str());
  serve::Response cold = engine.LinkPredictTopK(query.h, query.r, 5);
  for (const serve::ScoredEntity& e : cold.payload.topk) {
    std::printf("  %-40s score=%.4f\n", ds.entity_names[e.id].c_str(),
                e.score);
  }
  serve::Response warm = engine.LinkPredictTopK(query.h, query.r, 5);
  std::printf("  repeat served from cache: %s (answers identical: %s)\n",
              warm.from_cache ? "yes" : "no",
              warm.payload.topk == cold.payload.topk ? "yes" : "no");

  // --- EntityLink: free-text brand mention -> taxonomy node. ---
  const openbg::datagen::Product& product = kg->world().products[0];
  serve::Response link = engine.EntityLink(product.brand_mention);
  std::printf("\n[entity_link] \"%s\" -> node %d (similarity %.2f)\n",
              product.brand_mention.c_str(), link.payload.link.node,
              link.payload.link.similarity);

  // --- Neighbors / ConceptsOf: sealed-index graph reads. ---
  openbg::rdf::TermId term = kg->assembly().product_terms[0];
  serve::Response nbrs = engine.Neighbors(term);
  serve::Response concepts = engine.ConceptsOf(term);
  std::printf("\n[neighbors]   product #0 has %zu edges\n",
              nbrs.payload.triples.size());
  std::printf("[concepts_of] product #0 has %zu concept links\n",
              concepts.payload.triples.size());

  // --- Reload: one more training epoch, then swap the model in. The
  // generation bump invalidates every cached answer at O(1) cost. ---
  config.epochs = 1;
  TrainKgeModel(&model, ds, config);
  ctx.ReloadModel(&model);
  serve::Response fresh = engine.LinkPredictTopK(query.h, query.r, 5);
  std::printf("\nafter reload, repeat query from cache: %s\n",
              fresh.from_cache ? "yes (BUG)" : "no (recomputed)");

  // --- ANN serving: the same bindings with the IVF + int8 index enabled.
  // Top-K groups route through quantized cluster scans plus an exact float
  // rescore instead of the full-entity scan; unsupported models (TransH /
  // TransD / TuckER) silently keep the exact path. With nprobe >=
  // num_clusters the index rescores every entity, so answers are
  // byte-identical to the exact engine — the setting to start from before
  // dialing nprobe down for speed. ---
  serve::ServeContext::Bindings ann_bindings = bindings;
  ann_bindings.ann_enabled = true;
  ann_bindings.ann.num_clusters = 32;
  ann_bindings.ann.nprobe = 32;  // full probe: exact answers through ANN
  serve::ServeContext ann_ctx(ann_bindings);
  serve::QueryEngine ann_engine(&ann_ctx, opts);
  serve::Response exact_r = engine.LinkPredictTopK(query.h, query.r, 5);
  serve::Response ann_r = ann_engine.LinkPredictTopK(query.h, query.r, 5);
  std::printf("\n[ann] full-probe ANN answers identical to exact: %s\n",
              ann_r.payload.topk == exact_r.payload.topk ? "yes" : "no");
  serve::QueryEngine::AnnStats ann_stats = ann_engine.ann_stats();
  std::printf("[ann] queries=%llu probed_clusters=%llu rescored=%llu\n",
              static_cast<unsigned long long>(ann_stats.queries),
              static_cast<unsigned long long>(ann_stats.probed_clusters),
              static_cast<unsigned long long>(ann_stats.rescored));

  std::printf("\nmetrics snapshot:\n%s\n", engine.MetricsJson().c_str());
  return 0;
}
