// Quickstart: build a small synthetic OpenBG, inspect it, query it, and
// export it — the five-minute tour of the public API.

#include <cstdio>

#include "core/openbg.h"
#include "ontology/stats.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot.h"
#include "util/parse.h"
#include "util/string_util.h"

int main() {
  using namespace openbg;

  // 1. Build a world and construct the knowledge graph over it.
  core::OpenBG::Options options;
  options.world.seed = 42;
  options.world.scale = 0.25;
  options.world.num_products = 800;
  std::unique_ptr<core::OpenBG> kg = core::OpenBG::Build(options);
  std::printf("constructed OpenBG: %zu triples, %zu products\n",
              kg->graph().store.size(), kg->world().products.size());

  // 2. Table-I style statistics.
  ontology::KgStats stats = kg->Stats();
  std::printf("core classes: %zu, core concepts: %zu, relation types: %zu\n",
              stats.num_core_classes, stats.num_core_concepts,
              stats.num_relation_types);

  // 3. Query the triple store: everything known about the first product.
  rdf::TermId item = kg->assembly().product_terms[0];
  const auto& dict = kg->graph().dict;
  std::printf("\nfirst item <%s>:\n", dict.Text(item).c_str());
  size_t shown = 0;
  kg->graph().store.ForEachMatchFn(
      {item, rdf::TriplePattern::kAny, rdf::TriplePattern::kAny},
      [&](const rdf::Triple& t) {
        std::printf("  %s -> %s\n", dict.Text(t.p).c_str(),
                    dict.Text(t.o).c_str());
        return ++shown < 8;
      });

  // 4. Reason over it: domain/range validation + taxonomy closure.
  ontology::Reasoner reasoner = kg->MakeReasoner();
  std::printf("\nvalidation: %zu domain/range violations\n",
              reasoner.ValidateObjectProperties().size());
  rdf::TermId category = kg->graph().store.FirstObject(
      item, kg->graph().vocab.rdf_type);
  bool is_cat = reasoner.IsSubClassOf(
      category, kg->ontology().CoreTerm(ontology::CoreKind::kCategory));
  std::printf("item's type is in the Category taxonomy: %s\n",
              is_cat ? "yes" : "no");

  // 5. Sample a link-prediction benchmark and export the KG.
  bench_builder::BenchmarkSpec spec;
  spec.num_relations = 20;
  bench_builder::Dataset ds = kg->BuildBenchmark(spec, nullptr);
  std::printf("\nbenchmark: %zu entities, %zu relations, %zu train triples\n",
              ds.num_entities(), ds.num_relations(), ds.train.size());

  util::Status st = kg->ExportNTriples("/tmp/openbg_quickstart.nt");
  std::printf("export to N-Triples: %s\n", st.ToString().c_str());

  // 6. Fault-tolerant reload: real dumps have junk lines. Under the
  // kSkipAndReport policy the loader skips malformed lines and reports
  // them instead of rejecting the whole file.
  std::FILE* f = std::fopen("/tmp/openbg_quickstart.nt", "a");
  if (f != nullptr) {
    std::fputs("<http://openbg.example/broken> no-predicate .\n", f);
    std::fclose(f);
  }
  rdf::TermDict reload_dict;
  rdf::TripleStore reload_store;
  util::ParseOptions lenient;
  lenient.policy = util::ParsePolicy::kSkipAndReport;
  util::ParseReport report;
  st = rdf::ReadNTriples("/tmp/openbg_quickstart.nt", &reload_dict,
                         &reload_store, lenient, &report);
  std::printf("lenient reload: %s (%s)\n", st.ToString().c_str(),
              report.Summary().c_str());

  // 7. Crash-safe snapshot: a checksummed binary image of the dictionary +
  // store, written atomically; truncated/corrupt files refuse to load.
  st = rdf::SaveSnapshot(kg->graph().dict, kg->graph().store,
                         "/tmp/openbg_quickstart.snap");
  std::printf("snapshot save: %s\n", st.ToString().c_str());
  rdf::TermDict snap_dict;
  rdf::TripleStore snap_store;
  st = rdf::LoadSnapshot("/tmp/openbg_quickstart.snap", &snap_dict,
                         &snap_store);
  std::printf("snapshot load: %s (%zu terms, %zu triples)\n",
              st.ToString().c_str(), snap_dict.size(), snap_store.size());
  return 0;
}
