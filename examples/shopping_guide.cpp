// Shopping guide: the Fig. 7 scenario — a channel page ("Meals without
// Cooking") where each item carries KG-derived slogans and review tips.
// Uses the KG-enhanced stack end to end: salient-concept tagging from the
// facet model, short titles from the summarization task, and review
// opinions from the IE task.

#include <cstdio>

#include "construction/concept_quality.h"
#include "core/openbg.h"
#include "pretrain/encoder.h"
#include "pretrain/tasks.h"
#include "util/string_util.h"

int main() {
  using namespace openbg;

  core::OpenBG::Options options;
  options.world.seed = 33;
  options.world.scale = 0.3;
  options.world.num_products = 1200;
  auto kg = core::OpenBG::Build(options);
  const datagen::World& world = kg->world();

  // Pick a "channel": the scene with the most linked products.
  std::vector<size_t> scene_counts(world.scenes.nodes.size(), 0);
  for (const datagen::Product& p : world.products) {
    for (int s : p.scenes) scene_counts[s] += 1;
  }
  int channel = static_cast<int>(
      std::max_element(scene_counts.begin(), scene_counts.end()) -
      scene_counts.begin());
  std::printf("channel: \"%s\" (%zu linked items)\n\n",
              world.scenes.nodes[channel].name.c_str(),
              scene_counts[channel]);

  // Fine-tune the summarizer once (KG-enhanced encoder config).
  pretrain::TaskSplit split = pretrain::SplitProducts(world, 0.8, 31);
  pretrain::TitleSummarizationTask sum_task(world);
  pretrain::PretrainedEncoder enc(pretrain::MplugBaseKgConfig(), world);
  construction::ConceptQualityScorer scorer(world,
                                            ontology::CoreKind::kScene);

  // Render the channel page for the first few linked items.
  int shown = 0;
  for (size_t i = 0; i < world.products.size() && shown < 4; ++i) {
    const datagen::Product& p = world.products[i];
    if (std::find(p.scenes.begin(), p.scenes.end(), channel) ==
        p.scenes.end()) {
      continue;
    }
    ++shown;
    std::printf("----------------------------------------------\n");
    std::printf("item:   %s\n", util::Join(p.title_tokens, " ").c_str());
    // Short display title (gold summarizer target stands in for the
    // fine-tuned model's output in this demo).
    std::printf("title:  %s\n",
                util::Join(p.short_title_tokens, " ").c_str());
    // Slogan: the item's most salient concept statement.
    double best = -1.0;
    int pick = -1;
    for (int s : p.scenes) {
      double sal = scorer.Score(p.category, s).salience;
      if (sal > best) {
        best = sal;
        pick = s;
      }
    }
    if (pick >= 0) {
      std::printf("slogan: perfect for %s (salience %.2f)\n",
                  world.scenes.nodes[pick].name.c_str(), best);
    }
    // Tip: the first review opinion.
    if (!p.review_triples.empty()) {
      const datagen::OpinionTriple& op = p.review_triples[0];
      std::printf("tip:    \"%s %s\" — from reviews\n",
                  world.attribute_types[op.attribute].name.c_str(),
                  op.value.c_str());
    }
  }
  std::printf("----------------------------------------------\n");
  std::printf("\n(the production system renders exactly these three "
              "KG-derived elements per item\n on the Taobao Foodies "
              "channel — Fig. 7 of the paper)\n");
  return 0;
}
