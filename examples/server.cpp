// example_server: serve the OpenBG query engine over OBGWIRE1 sockets.
//
// Default mode builds a synthetic world, trains a small TransE, and
// listens until SIGTERM/SIGINT (graceful drain).
//
//   ./example_server --port 4817
//
// --smoke runs a self-contained exercise used by scripts/check_all.sh:
// the server starts on an ephemeral port, in-process pipelined clients
// drive mixed endpoints across three tenants (one rate-limited so sheds
// actually happen), a canary model is mirrored and promoted mid-stream,
// and the process exits 0 only if every request id was answered exactly
// once with a whole frame. Run it under ASan/TSan for the real payoff.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/openbg.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/canary.h"
#include "serve/engine.h"

namespace {

openbg::net::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

struct World {
  std::unique_ptr<openbg::core::OpenBG> kg;
  std::unique_ptr<openbg::kge::Dataset> dataset;
  std::unique_ptr<openbg::kge::TransE> model;
  std::unique_ptr<openbg::construction::SchemaMapper> mapper;
};

World BuildWorld(uint64_t seed) {
  World w;
  openbg::core::OpenBG::Options options;
  options.world.seed = seed;
  options.world.scale = 0.25;
  options.world.num_products = 300;
  w.kg = openbg::core::OpenBG::Build(options);

  openbg::bench_builder::BenchmarkSpec spec;
  spec.name = "example-server";
  spec.num_relations = 12;
  spec.dev_size = 40;
  spec.test_size = 80;
  w.dataset = std::make_unique<openbg::kge::Dataset>(
      w.kg->BuildBenchmark(spec, nullptr));

  openbg::util::Rng rng(seed + 1);
  w.model = std::make_unique<openbg::kge::TransE>(
      w.dataset->num_entities(), w.dataset->num_relations(), 16, 1.0f, &rng);
  openbg::kge::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 256;
  TrainKgeModel(w.model.get(), *w.dataset, config);
  w.mapper = std::make_unique<openbg::construction::SchemaMapper>(
      w.kg->world().brands);
  return w;
}

openbg::serve::ServeContext::Bindings Bind(const World& w) {
  openbg::serve::ServeContext::Bindings b;
  b.graph = &w.kg->graph();
  b.ontology = &w.kg->ontology();
  b.dataset = w.dataset.get();
  b.model = w.model.get();
  b.mapper = w.mapper.get();
  return b;
}

// One smoke client: pipelined mixed endpoints, exact id accounting.
// Returns false (and prints why) on any protocol violation.
bool RunSmokeClient(uint16_t port, uint32_t tenant, size_t requests,
                    const World& w, size_t* ok, size_t* shed,
                    size_t* refused) {
  openbg::net::Client::Options copts;
  copts.port = port;
  copts.tenant_id = tenant;
  openbg::net::Client client(copts);
  openbg::util::Status s = client.Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "[smoke] tenant %u connect: %s\n", tenant,
                 s.message().c_str());
    return false;
  }
  const auto& test = w.dataset->test;
  const auto& terms = w.kg->assembly().product_terms;
  size_t sent = 0;
  while (sent < requests) {
    const size_t batch = std::min<size_t>(64, requests - sent);
    std::map<uint64_t, int> inflight;
    for (size_t i = 0; i < batch; ++i) {
      const size_t n = sent + i;
      uint64_t id = 0;
      switch (n % 4) {
        case 0: {
          const auto& q = test[n % test.size()];
          id = client.SendLinkPredict(q.h, q.r, 10);
          break;
        }
        case 1:
          id = client.SendNeighbors(terms[n % terms.size()]);
          break;
        case 2:
          id = client.SendConceptsOf(terms[(n * 7) % terms.size()]);
          break;
        default:
          id = client.SendPing("smoke");
          break;
      }
      if (!inflight.emplace(id, 1).second) {
        std::fprintf(stderr, "[smoke] tenant %u duplicate id\n", tenant);
        return false;
      }
    }
    sent += batch;
    s = client.Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "[smoke] tenant %u flush: %s\n", tenant,
                   s.message().c_str());
      return false;
    }
    while (!inflight.empty()) {
      openbg::net::WireResponse resp;
      s = client.Recv(&resp);
      if (!s.ok()) {
        std::fprintf(stderr, "[smoke] tenant %u recv: %s\n", tenant,
                     s.message().c_str());
        return false;
      }
      if (inflight.erase(resp.request_id) != 1) {
        std::fprintf(stderr, "[smoke] tenant %u stray id %llu\n", tenant,
                     static_cast<unsigned long long>(resp.request_id));
        return false;
      }
      switch (resp.status) {
        case openbg::net::WireStatus::kOk:
        case openbg::net::WireStatus::kDegraded:
          ++*ok;
          break;
        case openbg::net::WireStatus::kShed:
          ++*shed;
          break;
        case openbg::net::WireStatus::kShuttingDown:
          ++*refused;
          break;
        default:
          std::fprintf(stderr, "[smoke] tenant %u bad status %s\n", tenant,
                       openbg::net::WireStatusName(resp.status));
          return false;
      }
    }
  }
  return true;
}

int RunSmoke() {
  World w = BuildWorld(/*seed=*/47);
  openbg::serve::ServeContext ctx(Bind(w));
  openbg::serve::EngineOptions eopts;
  eopts.num_threads = 2;
  openbg::serve::QueryEngine engine(&ctx, eopts);

  openbg::serve::CanaryOptions canary_opts;
  canary_opts.mirror_fraction = 0.25;
  openbg::serve::CanaryController canary(&ctx, canary_opts);

  openbg::net::ServerOptions sopts;
  sopts.port = 0;  // ephemeral
  sopts.event_threads = 2;
  sopts.worker_threads = 2;
  sopts.canary = &canary;
  sopts.governor.default_tenant = {1e12, 1e12,
                                   openbg::net::Tier::kPaid};
  openbg::net::Server server(&engine, sopts);
  openbg::util::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "[smoke] start: %s\n", s.message().c_str());
    return 1;
  }
  // Tenant 3 is deliberately starved so the shed path executes.
  server.governor().SetTenant(
      3, {/*rate=*/5.0, /*burst=*/25.0, openbg::net::Tier::kFree});
  std::printf("[smoke] serving on 127.0.0.1:%u\n", server.port());

  // Stage the canary before traffic starts so the mirror actually sees
  // requests, then promote while clients are (ideally) still streaming.
  openbg::util::Rng rng(991);
  auto candidate = std::make_shared<openbg::kge::TransE>(
      w.dataset->num_entities(), w.dataset->num_relations(), 16, 1.0f, &rng);
  const uint64_t gen_before = ctx.generation();
  s = canary.Begin(candidate);
  if (!s.ok()) {
    std::fprintf(stderr, "[smoke] canary begin: %s\n", s.message().c_str());
    return 1;
  }

  constexpr size_t kPerTenant = 800;
  std::atomic<bool> all_ok{true};
  size_t ok[3] = {0, 0, 0}, shed[3] = {0, 0, 0}, refused[3] = {0, 0, 0};
  std::vector<std::thread> clients;
  const uint32_t tenants[3] = {1, 2, 3};
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      if (!RunSmokeClient(server.port(), tenants[i], kPerTenant, w, &ok[i],
                          &shed[i], &refused[i])) {
        all_ok.store(false);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  s = canary.Promote();
  if (!s.ok()) {
    std::fprintf(stderr, "[smoke] canary promote: %s\n",
                 s.message().c_str());
    all_ok.store(false);
  }
  for (std::thread& t : clients) t.join();

  if (canary.stats().mirrored == 0) {
    std::fprintf(stderr, "[smoke] canary mirrored no traffic\n");
    all_ok.store(false);
  }

  if (ctx.generation() != gen_before + 1) {
    std::fprintf(stderr, "[smoke] promotion did not bump generation\n");
    all_ok.store(false);
  }
  if (shed[2] == 0) {
    std::fprintf(stderr, "[smoke] starved tenant was never shed\n");
    all_ok.store(false);
  }
  if (shed[0] != 0 || shed[1] != 0) {
    std::fprintf(stderr, "[smoke] paid tenants were shed\n");
    all_ok.store(false);
  }
  server.Stop();
  std::printf(
      "[smoke] done ok=%zu/%zu/%zu shed=%zu/%zu/%zu refused=%zu/%zu/%zu "
      "canary=%s\n",
      ok[0], ok[1], ok[2], shed[0], shed[1], shed[2], refused[0], refused[1],
      refused[2],
      openbg::serve::CanaryController::StateName(canary.state()));
  std::printf("%s\n", server.MetricsJson().c_str());
  return all_ok.load() ? 0 : 1;
}

int RunServe(uint16_t port) {
  World w = BuildWorld(/*seed=*/47);
  openbg::serve::ServeContext ctx(Bind(w));
  openbg::serve::QueryEngine engine(&ctx, openbg::serve::EngineOptions{});
  openbg::serve::CanaryController canary(
      &ctx, openbg::serve::CanaryOptions{});

  openbg::net::ServerOptions sopts;
  sopts.port = port;
  sopts.canary = &canary;
  openbg::net::Server server(&engine, sopts);
  openbg::util::Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.message().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("serving OBGWIRE1 on 127.0.0.1:%u (SIGTERM drains)\n",
              server.port());
  server.Wait();
  g_server = nullptr;
  std::printf("drained; final metrics:\n%s\n", server.MetricsJson().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--port N] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return smoke ? RunSmoke() : RunServe(port);
}
