// Link prediction: sample an OpenBG benchmark, train TransE and a
// multimodal model on it, evaluate with the filtered ranking protocol, and
// show a concrete tail-prediction query — the Sec. III workflow end to end.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/openbg.h"
#include "kge/checkpoint.h"
#include "kge/evaluator.h"
#include "kge/multimodal_models.h"
#include "kge/trainer.h"
#include "kge/trans_models.h"

int main() {
  using namespace openbg;

  core::OpenBG::Options options;
  options.world.seed = 21;
  options.world.scale = 0.4;
  options.world.num_products = 1500;
  auto kg = core::OpenBG::Build(options);

  bench_builder::BenchmarkSpec spec;
  spec.name = "demo-img";
  spec.num_relations = 25;
  spec.require_image = true;
  spec.dev_size = 200;
  spec.test_size = 300;
  kge::Dataset ds = kg->BuildBenchmark(spec, nullptr);
  std::printf("benchmark: %zu entities (%zu with images), %zu relations, "
              "%zu train\n\n", ds.num_entities(),
              ds.num_multimodal_entities(), ds.num_relations(),
              ds.train.size());

  kge::RankingEvaluator::Options eopts;
  eopts.filtered = true;
  eopts.max_triples = 200;
  // Shard the ranking across 4 workers; metrics match a serial run exactly.
  eopts.num_threads = 4;
  kge::RankingEvaluator evaluator(ds, eopts);
  kge::TrainConfig config;
  config.epochs = 15;
  config.batch_size = 512;
  config.lr = 0.05f;
  // Parallel training (the --train-threads/--train-mode flags of the bench
  // binaries). Deterministic mode shards gradient *computation* across the
  // workers but applies the updates in batch order, so the trained model is
  // bit-identical to a 1-thread run — checkpoints stay resumable too.
  config.num_threads = 4;
  config.mode = kge::TrainMode::kDeterministic;

  // Crash-safe training: a checkpoint is written after every epoch. Kill
  // the process mid-run and rerun it — training resumes where it stopped,
  // bit-identical to an uninterrupted run.
  config.checkpoint_path = "/tmp/openbg_lp_transe.ckpt";
  std::remove(config.checkpoint_path.c_str());  // fresh demo run

  util::Rng rng(9);
  kge::TransE transe(ds.num_entities(), ds.num_relations(), 32, 1.0f, &rng);
  TrainKgeModel(&transe, ds, config);
  kge::RankingMetrics m1 = evaluator.Evaluate(&transe);
  std::printf("TransE   : Hits@1 %.3f  Hits@10 %.3f  MRR %.3f  MR %.0f\n",
              m1.hits1, m1.hits10, m1.mrr, m1.mr);

  // Demonstrate resume: a fresh TransE picks the finished run's state back
  // up from the checkpoint, so "retraining" is a no-op returning instantly.
  kge::TransE resumed(ds.num_entities(), ds.num_relations(), 32, 1.0f, &rng);
  TrainKgeModel(&resumed, ds, config);
  kge::RankingMetrics m1r = evaluator.Evaluate(&resumed);
  std::printf("TransE*  : Hits@1 %.3f  Hits@10 %.3f  MRR %.3f  MR %.0f  "
              "(resumed from checkpoint)\n",
              m1r.hits1, m1r.hits10, m1r.mrr, m1r.mr);
  config.checkpoint_path.clear();

  kge::RsmeModel rsme(ds, 32, 1.0f, &rng);
  config.lr = 0.1f;
  // Hogwild mode: lock-free racing updates, fastest wall-clock but only
  // reproducible run-to-run with the same thread count (see DESIGN.md §9).
  config.mode = kge::TrainMode::kHogwild;
  TrainKgeModel(&rsme, ds, config);
  kge::RankingMetrics m2 = evaluator.Evaluate(&rsme);
  std::printf("RSME     : Hits@1 %.3f  Hits@10 %.3f  MRR %.3f  MR %.0f\n",
              m2.hits1, m2.hits10, m2.mrr, m2.mr);
  std::printf("(multimodal RSME should match or beat single-modal TransE "
              "— Table III's shape)\n\n");

  // A concrete query: (h, r, ?) -> top-5 predicted tails.
  const kge::LpTriple& q = ds.test[0];
  std::printf("query: (%s, %s, ?)   gold tail: %s\n",
              ds.entity_names[q.h].c_str(), ds.relation_names[q.r].c_str(),
              ds.entity_names[q.t].c_str());
  std::vector<float> scores;
  rsme.PrepareEval();
  rsme.ScoreTails(q.h, q.r, &scores);
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&scores](size_t a, size_t b) {
                      return scores[a] > scores[b];
                    });
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d %-32s score %.3f%s\n", i + 1,
                ds.entity_names[order[i]].c_str(), scores[order[i]],
                order[i] == q.t ? "   <= gold" : "");
  }
  return 0;
}
